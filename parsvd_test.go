package parsvd_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	parsvd "goparsvd"

	"goparsvd/internal/launch"
	"goparsvd/internal/mat"
	"goparsvd/internal/ncio"
	"goparsvd/internal/testutil"
)

// TestNewRejectsInvalidOptions is the acceptance statement that the
// public constructor path is error-based: every misconfiguration comes
// back as an error, never a panic.
func TestNewRejectsInvalidOptions(t *testing.T) {
	cases := map[string][]parsvd.Option{
		"zero modes":            {parsvd.WithModes(0)},
		"negative modes":        {parsvd.WithModes(-3)},
		"zero forget factor":    {parsvd.WithForgetFactor(0)},
		"ff above one":          {parsvd.WithForgetFactor(1.5)},
		"NaN forget factor":     {parsvd.WithForgetFactor(math.NaN())},
		"unknown backend":       {parsvd.WithBackend(parsvd.Backend(42))},
		"zero ranks":            {parsvd.WithRanks(0)},
		"serial multi-rank":     {parsvd.WithRanks(3)},
		"negative init rank":    {parsvd.WithInitRank(-1)},
		"nil option":            {nil},
		"nil checkpoint":        {parsvd.WithCheckpoint(nil)},
		"bad rla":               {parsvd.WithLowRank(parsvd.RLA{Oversample: -1})},
		"two rla configs":       {parsvd.WithLowRank(parsvd.RLA{}, parsvd.RLA{})},
		"transport on serial":   {parsvd.WithTransport(parsvd.TransportConfig{})},
		"transport on parallel": {parsvd.WithBackend(parsvd.Parallel), parsvd.WithTransport(parsvd.TransportConfig{})},
		"negative transport timeout": {
			parsvd.WithBackend(parsvd.Distributed), parsvd.WithTransport(parsvd.TransportConfig{Timeout: -1})},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			svd, err := parsvd.New(opts...)
			if err == nil {
				t.Fatalf("New(%s) did not error (got backend %v)", name, svd.Backend())
			}
		})
	}
}

// TestSerialFitMatchesBatchSVD: streaming a low-rank matrix with ff = 1
// through the facade reproduces the one-shot truncated SVD spectrum.
func TestSerialFitMatchesBatchSVD(t *testing.T) {
	rng := testutil.NewRand(3)
	a, _ := testutil.RandomLowRank(120, 40, 4, 0, rng)

	svd, err := parsvd.New(parsvd.WithModes(4), parsvd.WithForgetFactor(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := svd.Fit(context.Background(), parsvd.FromMatrix(a, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshots != 40 || res.Iterations != 3 {
		t.Fatalf("counters: snapshots=%d iterations=%d", res.Snapshots, res.Iterations)
	}
	_, want, _, err := parsvd.TruncatedSVD(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.CloseSlices(res.Singular, want, 1e-8) {
		t.Fatalf("spectrum: got %v want %v", res.Singular, want)
	}
	if r, c := res.Modes.Dims(); r != 120 || c != 4 {
		t.Fatalf("modes: %dx%d", r, c)
	}
}

// TestPushMatchesFit: driving batches through Push yields the same state
// as Fit over the equivalent source.
func TestPushMatchesFit(t *testing.T) {
	rng := testutil.NewRand(4)
	a := testutil.RandomDense(60, 24, rng)

	fit, _ := parsvd.New(parsvd.WithModes(5))
	resFit, err := fit.Fit(context.Background(), parsvd.FromMatrix(a, 8))
	if err != nil {
		t.Fatal(err)
	}

	push, _ := parsvd.New(parsvd.WithModes(5))
	for off := 0; off < 24; off += 8 {
		if err := push.Push(a.SliceCols(off, off+8)); err != nil {
			t.Fatal(err)
		}
	}
	resPush, err := push.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.CloseSlices(resFit.Singular, resPush.Singular, 0) {
		t.Fatalf("push/fit spectra differ: %v vs %v", resFit.Singular, resPush.Singular)
	}
	if !mat.EqualApprox(resFit.Modes, resPush.Modes, 0) {
		t.Fatal("push/fit modes differ")
	}
}

// TestParallelMatchesSerial: the in-process parallel backend agrees with
// the serial backend on the same global batches.
func TestParallelMatchesSerial(t *testing.T) {
	rng := testutil.NewRand(5)
	a, _ := testutil.RandomLowRank(96, 30, 5, 1e-9, rng)

	serial, _ := parsvd.New(parsvd.WithModes(5), parsvd.WithForgetFactor(0.95))
	sres, err := serial.Fit(context.Background(), parsvd.FromMatrix(a, 10))
	if err != nil {
		t.Fatal(err)
	}

	par, err := parsvd.New(parsvd.WithModes(5), parsvd.WithForgetFactor(0.95),
		parsvd.WithBackend(parsvd.Parallel), parsvd.WithRanks(4))
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	pres, err := par.Fit(context.Background(), parsvd.FromMatrix(a, 10))
	if err != nil {
		t.Fatal(err)
	}
	if pres.Snapshots != sres.Snapshots || pres.Iterations != sres.Iterations {
		t.Fatalf("counters differ: %+v vs %+v", pres, sres)
	}
	if !testutil.CloseSlices(sres.Singular, pres.Singular, 1e-6) {
		t.Fatalf("spectra differ: %v vs %v", sres.Singular, pres.Singular)
	}
	if pr, pc := pres.Modes.Dims(); pr != 96 || pc != 5 {
		t.Fatalf("gathered modes: %dx%d", pr, pc)
	}
	st := par.Stats()
	if st.Ranks != 4 || st.Messages == 0 {
		t.Fatalf("parallel stats not counted: %+v", st)
	}
}

// TestParallelPushAndIncrementalResult: Push works on the parallel
// backend too, and Result can be read mid-stream without corrupting the
// continuation.
func TestParallelPushAndIncrementalResult(t *testing.T) {
	rng := testutil.NewRand(6)
	a := testutil.RandomDense(64, 18, rng)

	par, err := parsvd.New(parsvd.WithModes(4), parsvd.WithBackend(parsvd.Parallel),
		parsvd.WithRanks(3))
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	if err := par.Push(a.SliceCols(0, 6)); err != nil {
		t.Fatal(err)
	}
	mid, err := par.Result()
	if err != nil {
		t.Fatal(err)
	}
	if mid.Snapshots != 6 {
		t.Fatalf("mid snapshots = %d", mid.Snapshots)
	}
	if err := par.Push(a.SliceCols(6, 18)); err != nil {
		t.Fatal(err)
	}
	fin, err := par.Result()
	if err != nil {
		t.Fatal(err)
	}
	if fin.Snapshots != 18 || fin.Iterations != 1 {
		t.Fatalf("final counters: %+v", fin)
	}

	// A mismatched batch is a caller error, reported without killing the
	// engine.
	if err := par.Push(testutil.RandomDense(10, 3, rng)); err == nil {
		t.Fatal("row-mismatched Push did not error")
	}
	if err := par.Push(a.SliceCols(0, 2)); err != nil {
		t.Fatalf("engine unusable after rejected batch: %v", err)
	}
}

// TestSaveLoadRoundTrip: serial Save → Load → continue matches the
// uninterrupted run.
func TestSaveLoadRoundTrip(t *testing.T) {
	rng := testutil.NewRand(7)
	a := testutil.RandomDense(40, 20, rng)

	orig, _ := parsvd.New(parsvd.WithModes(3), parsvd.WithForgetFactor(0.9))
	if err := orig.Push(a.SliceCols(0, 10)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := parsvd.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Backend() != parsvd.Serial {
		t.Fatalf("restored backend = %v", restored.Backend())
	}
	if err := orig.Push(a.SliceCols(10, 20)); err != nil {
		t.Fatal(err)
	}
	if err := restored.Push(a.SliceCols(10, 20)); err != nil {
		t.Fatal(err)
	}
	ro, _ := orig.Result()
	rr, _ := restored.Result()
	if !testutil.CloseSlices(ro.Singular, rr.Singular, 0) {
		t.Fatalf("restored run diverged: %v vs %v", ro.Singular, rr.Singular)
	}
	if !mat.EqualApprox(ro.Modes, rr.Modes, 0) {
		t.Fatal("restored modes diverged")
	}
}

// TestParallelSaveLoadsAsGlobalState: a parallel run's checkpoint holds
// the gathered global modes and resumes as a serial engine.
func TestParallelSaveLoadsAsGlobalState(t *testing.T) {
	rng := testutil.NewRand(8)
	a := testutil.RandomDense(48, 12, rng)

	par, err := parsvd.New(parsvd.WithModes(4), parsvd.WithBackend(parsvd.Parallel),
		parsvd.WithRanks(4))
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	if err := par.Push(a); err != nil {
		t.Fatal(err)
	}
	want, err := par.Result()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := par.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := parsvd.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !mat.EqualApprox(want.Modes, got.Modes, 0) {
		t.Fatal("checkpointed global modes differ from gathered modes")
	}
	if !testutil.CloseSlices(want.Singular, got.Singular, 0) {
		t.Fatal("checkpointed spectrum differs")
	}
}

// TestWithCheckpointWritesOnFit: Fit serializes the final state to the
// configured writer.
func TestWithCheckpointWritesOnFit(t *testing.T) {
	rng := testutil.NewRand(9)
	a := testutil.RandomDense(30, 12, rng)
	var buf bytes.Buffer
	svd, err := parsvd.New(parsvd.WithModes(3), parsvd.WithCheckpoint(&buf))
	if err != nil {
		t.Fatal(err)
	}
	want, err := svd.Fit(context.Background(), parsvd.FromMatrix(a, 4))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := parsvd.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !mat.EqualApprox(want.Modes, got.Modes, 0) {
		t.Fatal("checkpoint state differs from Fit result")
	}
}

// TestFitContextCancellation: a canceled context stops the batch loop.
func TestFitContextCancellation(t *testing.T) {
	svd, _ := parsvd.New(parsvd.WithModes(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := testutil.NewRand(10)
	_, err := svd.Fit(ctx, parsvd.FromMatrix(testutil.RandomDense(10, 6, rng), 2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFromNetCDF: a (time × lat × lon) container variable streams as a
// (lat·lon × time) snapshot matrix, batch by batch.
func TestFromNetCDF(t *testing.T) {
	const (
		steps = 9
		nlat  = 4
		nlon  = 3
	)
	path := filepath.Join(t.TempDir(), "field.gnc")
	w, err := ncio.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []error{
		w.DefineDim("time", steps), w.DefineDim("lat", nlat), w.DefineDim("lon", nlon),
		w.DefineVar("p", []string{"time", "lat", "lon"}, nil), w.EndDef(),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	rows := nlat * nlon
	want := parsvd.NewMatrix(rows, steps)
	for s := 0; s < steps; s++ {
		plane := make([]float64, rows)
		for r := range plane {
			plane[r] = float64(s*100 + r)
			want.Set(r, s, plane[r])
		}
		if err := w.WriteSlab("p", []int64{int64(s), 0, 0}, []int64{1, nlat, nlon}, plane); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := parsvd.FromNetCDF(path, "p", 4)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]*parsvd.Matrix, 0, 3)
	for {
		b, err := src.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
	}
	if len(got) != 3 || got[0].Cols() != 4 || got[2].Cols() != 1 {
		t.Fatalf("batch shapes wrong: %d batches", len(got))
	}
	if !mat.EqualApprox(parsvd.HStack(got...), want, 0) {
		t.Fatal("NetCDF source misread the field")
	}

	if _, err := parsvd.FromNetCDF(path, "missing", 4); err == nil {
		t.Fatal("unknown variable did not error")
	}
	if _, err := parsvd.FromNetCDF(filepath.Join(t.TempDir(), "nope.gnc"), "p", 4); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestDistributedRejectsWrongUsage: the operations that remain invalid on
// the Distributed backend — reads before any data, batches too short to
// scatter, projection utilities — are errors caught before a single
// worker process is spawned, and they do not poison the SVD.
func TestDistributedRejectsWrongUsage(t *testing.T) {
	svd, err := parsvd.New(parsvd.WithBackend(parsvd.Distributed), parsvd.WithRanks(4))
	if err != nil {
		t.Fatal(err)
	}
	defer svd.Close()
	rng := testutil.NewRand(11)
	if _, err := svd.Result(); err == nil {
		t.Fatal("Result before any data did not error")
	}
	if err := svd.Save(io.Discard); err == nil {
		t.Fatal("Save before any data did not error")
	}
	// 2 rows cannot be row-scattered across 4 ranks.
	if err := svd.Push(testutil.RandomDense(2, 3, rng)); err == nil {
		t.Fatal("Push with fewer rows than ranks did not error")
	}
	if _, err := svd.Coefficients(testutil.RandomDense(4, 2, rng)); err == nil {
		t.Fatal("Coefficients on Distributed did not error")
	}
	// None of the rejections above may have poisoned the handle.
	if err := svd.Push(testutil.RandomDense(2, 3, rng)); err == nil ||
		errors.Is(err, parsvd.ErrEngineFailed) {
		t.Fatalf("second rejected Push: %v, want a plain validation error", err)
	}
}

// TestDistributedMatchesParallel runs the real multi-process TCP backend
// on the deterministic workload and cross-checks spectrum and modes hash
// against the in-process parallel backend on the same Source. Skipped in
// -short mode (it spawns worker processes).
func TestDistributedMatchesParallel(t *testing.T) {
	if testing.Short() && os.Getenv("CI") == "" {
		t.Skip("short mode: skipping multi-process run")
	}
	const ranks = 2
	w := parsvd.DefaultWorkload()
	w.RowsPerRank = 64
	w.Snapshots = 24
	w.InitBatch = 8
	w.Batch = 8
	w.K = 4
	w.R1 = 8

	dist, err := parsvd.New(parsvd.WithBackend(parsvd.Distributed), parsvd.WithRanks(ranks),
		parsvd.WithModes(w.K), parsvd.WithForgetFactor(w.FF), parsvd.WithInitRank(w.R1))
	if err != nil {
		t.Fatal(err)
	}
	defer dist.Close()
	src, err := parsvd.FromWorkload(w, ranks)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := dist.Fit(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if dres.ModesSHA256 == "" {
		t.Fatal("distributed result carries no modes fingerprint")
	}
	if dres.Iterations != 2 || dres.Snapshots != 24 {
		t.Fatalf("distributed counters: %+v", dres)
	}
	if st := dist.Stats(); st.Ranks != ranks || st.Bytes == 0 {
		t.Fatalf("distributed stats: %+v", st)
	}

	par, err := parsvd.New(parsvd.WithBackend(parsvd.Parallel), parsvd.WithRanks(ranks),
		parsvd.WithModes(w.K), parsvd.WithForgetFactor(w.FF), parsvd.WithInitRank(w.R1))
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	src2, err := parsvd.FromWorkload(w, ranks)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := par.Fit(context.Background(), src2)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.CloseSlices(dres.Singular, pres.Singular, 0) {
		t.Fatalf("TCP and in-process spectra differ:\n%v\n%v", dres.Singular, pres.Singular)
	}
	// The wire-fed fleet and the in-process rank world ran the identical
	// split of the identical batches: the gathered modes agree bit for bit.
	if want := launch.HashModes(pres.Modes); dres.ModesSHA256 != want {
		t.Fatalf("distributed modes hash %s differs from the parallel backend's %s", dres.ModesSHA256, want)
	}
}
