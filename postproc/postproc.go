// Package postproc is the public analysis and reporting companion to the
// parsvd facade — the role PyParSVD's postprocessing module plays for
// ParSVD_Base. It compares mode sets, summarizes spectra, renders ASCII
// overlays and writes CSV / PGM / GNC artifacts, working on the same
// Matrix type the facade returns regardless of which backend produced
// the modes.
package postproc

import (
	"io"

	"goparsvd/internal/grid"
	"goparsvd/internal/mat"
	ipostproc "goparsvd/internal/postproc"
)

// ModeError quantifies the disagreement of one mode pair: L2 and max-abs
// difference after sign alignment, plus the cosine of the angle between
// the vectors.
type ModeError = ipostproc.ModeError

// AlignSigns flips candidate columns so each correlates positively with
// the reference (SVD signs are arbitrary) and returns the aligned copy.
func AlignSigns(reference, candidate *mat.Dense) *mat.Dense {
	return ipostproc.AlignSigns(reference, candidate)
}

// CompareModes reports per-mode errors between two mode matrices.
func CompareModes(reference, candidate *mat.Dense) []ModeError {
	return ipostproc.CompareModes(reference, candidate)
}

// EnergyFractions converts singular values to normalized energy
// fractions σ_i² / Σσ².
func EnergyFractions(s []float64) []float64 { return ipostproc.EnergyFractions(s) }

// SingularValueReport prints a spectrum table with energy fractions.
func SingularValueReport(w io.Writer, s []float64) { ipostproc.SingularValueReport(w, s) }

// WriteSingularValuesCSV writes one or more spectra as CSV columns.
func WriteSingularValuesCSV(w io.Writer, labels []string, series ...[]float64) error {
	return ipostproc.WriteSingularValuesCSV(w, labels, series...)
}

// WriteModesCSV writes an x column followed by one column per mode.
func WriteModesCSV(w io.Writer, x []float64, modes *mat.Dense) error {
	return ipostproc.WriteModesCSV(w, x, modes)
}

// ASCIIPlot renders 1-D series as a terminal overlay plot.
func ASCIIPlot(w io.Writer, title string, width, height int, labels []string, series ...[]float64) {
	ipostproc.ASCIIPlot(w, title, width, height, labels, series...)
}

// WritePGMHeatmap renders a flattened nlat×nlon field as a portable
// graymap image.
func WritePGMHeatmap(w io.Writer, field []float64, nlat, nlon int) error {
	return ipostproc.WritePGMHeatmap(w, field, nlat, nlon)
}

// WriteModesGNC persists a mode matrix plus its singular values as a
// self-describing GNC container (inspect with cmd/gncinfo).
func WriteModesGNC(path string, modes *mat.Dense, singular []float64, attrs map[string]string) error {
	return ipostproc.WriteModesGNC(path, modes, singular, attrs)
}

// AbsCosine returns |cos∠(a, b)|: 1 means the vectors describe the same
// structure up to sign and scale. The standard mode-validation metric.
func AbsCosine(a, b []float64) float64 { return grid.AbsCosine(a, b) }
