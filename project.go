package parsvd

import "errors"

// Projection utilities (paper §2): once modes are available, snapshots
// compress to K coefficients each and reconstruct from them.

// Coefficients projects snapshots onto the current modes: the returned
// K×B matrix holds, per column, the modal coefficients Uᵀ·a of the
// corresponding snapshot column. Serial backend only — the parallel
// backends hold row-distributed modes.
func (s *SVD) Coefficients(a *Matrix) (*Matrix, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	eng, err := s.serialEngine()
	if err != nil {
		return nil, err
	}
	return eng.coefficients(a)
}

// Reconstruct maps K×B coefficients back to snapshot space (U·c), the
// other half of the rank-K compression round trip. Serial backend only.
func (s *SVD) Reconstruct(coeffs *Matrix) (*Matrix, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	eng, err := s.serialEngine()
	if err != nil {
		return nil, err
	}
	return eng.reconstruct(coeffs)
}

func (s *SVD) serialEngine() (*serialEngine, error) {
	if s.closed {
		return nil, errors.New("parsvd: SVD is closed")
	}
	eng, ok := s.eng.(*serialEngine)
	if !ok {
		return nil, errors.New("parsvd: projection utilities are available on the Serial backend only")
	}
	return eng, nil
}
