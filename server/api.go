package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	parsvd "goparsvd"
)

// MatrixJSON is the wire form of a dense matrix: row-major data with
// explicit dims, so a payload can be validated before it touches the
// engine. Columns are snapshots, rows are degrees of freedom — the same
// orientation as everywhere in parsvd.
type MatrixJSON struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// NewMatrixJSON wraps a matrix for encoding. The Data slice aliases the
// matrix (no copy); encode it promptly and do not mutate either side.
func NewMatrixJSON(m *parsvd.Matrix) MatrixJSON {
	return MatrixJSON{Rows: m.Rows(), Cols: m.Cols(), Data: m.RawData()}
}

// Matrix validates the payload and adopts it as a parsvd.Matrix.
func (mj MatrixJSON) Matrix() (*parsvd.Matrix, error) {
	if mj.Rows < 1 || mj.Cols < 1 {
		return nil, fmt.Errorf("server: matrix dims %dx%d: both must be >= 1", mj.Rows, mj.Cols)
	}
	m, err := parsvd.NewMatrixFromData(mj.Rows, mj.Cols, mj.Data)
	if err != nil {
		return nil, fmt.Errorf("server: %d data values for a %dx%d matrix", len(mj.Data), mj.Rows, mj.Cols)
	}
	return m, nil
}

// StatsJSON is the wire form of parsvd.Stats.
type StatsJSON struct {
	Backend   string `json:"backend"`
	K         int    `json:"k"`
	Ranks     int    `json:"ranks"`
	Rows      int    `json:"rows"`
	Snapshots int    `json:"snapshots"`
	Updates   int64  `json:"updates"`
	Messages  int64  `json:"messages"`
	Bytes     int64  `json:"bytes"`
	// PushedBytes is the logical snapshot volume ingested (8·M·B per
	// push, whatever the transport); WireBytes is what actually crossed
	// the ingress boundary — smaller when sketched pushes compressed it.
	// SketchedPushes counts the updates that arrived as factor pairs.
	PushedBytes    int64 `json:"pushed_bytes,omitempty"`
	WireBytes      int64 `json:"wire_bytes,omitempty"`
	SketchedPushes int64 `json:"sketched_pushes,omitempty"`
	// Shard is the model's shard provenance mark ("2/6" for shard 2 of
	// 6, "" for whole-stream models); Absorbed counts the shard
	// checkpoints merged into it. Together they let a coordinator — or
	// an operator reading listings — see which piece of a partitioned
	// stream each model holds.
	Shard    string `json:"shard,omitempty"`
	Absorbed int    `json:"absorbed,omitempty"`
}

func statsJSON(st parsvd.Stats) StatsJSON {
	return StatsJSON{
		Backend:        st.Backend.String(),
		K:              st.K,
		Ranks:          st.Ranks,
		Rows:           st.Rows,
		Snapshots:      st.Snapshots,
		Updates:        st.Updates,
		Messages:       st.Messages,
		Bytes:          st.Bytes,
		PushedBytes:    st.PushedBytes,
		WireBytes:      st.WireBytes,
		SketchedPushes: st.SketchedPushes,
		Shard:          st.Shard.String(),
		Absorbed:       st.Absorbed,
	}
}

// ModelInfo is the API representation of a registered model.
type ModelInfo struct {
	Spec    ModelSpec `json:"spec"`
	Stats   StatsJSON `json:"stats"`
	Version uint64    `json:"version"`
	// QueueDepth is the number of pushes waiting in the ingest queue.
	QueueDepth int `json:"queue_depth"`
	// IngestErr is the last view-publish fault, "" when healthy.
	IngestErr string `json:"ingest_error,omitempty"`
}

// PushAck confirms an applied push: the model state it is part of.
type PushAck struct {
	Snapshots int    `json:"snapshots"`
	Version   uint64 `json:"version"`
}

// SketchPushJSON is the wire form of a sketched push: the compressed
// (Q, S) factor pair parsvd.Sketch produces from an M×B batch, carrying
// L·(M+B) values instead of M·B. The server reconstructs Q·S on its side
// of the wire (or forwards the pair to a distributed fleet), so the
// ingress payload — and the WAL record — stay compressed.
type SketchPushJSON struct {
	Q MatrixJSON `json:"q"`
	S MatrixJSON `json:"s"`
}

// MergeRequest asks a model to absorb another decomposition through the
// pairwise SVD merge. Exactly one source must be set: Model names
// another model on this server (its current published view is
// snapshotted into a checkpoint and absorbed), Checkpoint carries raw
// goparsvd checkpoint bytes (base64 in JSON) — e.g. a shard-local fit
// uploaded from another machine.
type MergeRequest struct {
	Model      string `json:"model,omitempty"`
	Checkpoint []byte `json:"checkpoint,omitempty"`
}

// MergeAck confirms an applied merge: the target model's state after
// absorbing the source, including the accumulated truncation bound.
type MergeAck struct {
	Snapshots  int     `json:"snapshots"`
	Version    uint64  `json:"version"`
	MergeBound float64 `json:"merge_bound"`
}

// SpectrumResponse carries the singular values of the current View. For
// distributed models ModesSHA256 additionally fingerprints the gathered
// mode matrix (dims plus row-major IEEE-754 bits), so clients can verify
// a served model bit-for-bit against a reference run without shipping
// the matrix.
type SpectrumResponse struct {
	Singular    []float64 `json:"singular"`
	Version     uint64    `json:"version"`
	Snapshots   int       `json:"snapshots"`
	ModesSHA256 string    `json:"modes_sha256,omitempty"`
}

// ModesResponse carries the M×K mode matrix of the current View.
type ModesResponse struct {
	Modes   MatrixJSON `json:"modes"`
	Version uint64     `json:"version"`
}

// MatrixResponse carries a computed matrix (projection coefficients,
// reconstructed snapshots) plus the View version it was computed against.
type MatrixResponse struct {
	Matrix  MatrixJSON `json:"matrix"`
	Version uint64     `json:"version"`
}

// HealthResponse is the /healthz body. Beyond liveness it reports the
// per-model durability picture, so operators can see at a glance how much
// acked data is at risk (dirty age under checkpoint-only persistence, WAL
// depth under lazy fsync policies) and what the last boot's recovery cost.
type HealthResponse struct {
	Status string        `json:"status"`
	Models int           `json:"models"`
	Health []ModelHealth `json:"health,omitempty"`
}

// ModelHealth is one model's durability snapshot.
type ModelHealth struct {
	Name string `json:"name"`
	// Dirty reports updates applied since the last checkpoint;
	// DirtyAgeSeconds is how long ago the first of them landed — the age
	// of the data-at-risk window for checkpoint-only deployments.
	Dirty           bool    `json:"dirty"`
	DirtyAgeSeconds float64 `json:"dirty_age_seconds,omitempty"`
	// WAL reports whether the model has a write-ahead log; WALRecords and
	// WALBytes are its depth since the last rotation — the replay work a
	// crash right now would incur.
	WAL        bool  `json:"wal"`
	WALRecords int64 `json:"wal_records,omitempty"`
	WALBytes   int64 `json:"wal_bytes,omitempty"`
	// ReplayedOnBoot and RecoverySeconds describe the last restore: how
	// many WAL records were re-applied on top of the checkpoint, and how
	// long the whole recovery took.
	ReplayedOnBoot  uint64  `json:"replayed_on_boot,omitempty"`
	RecoverySeconds float64 `json:"recovery_seconds,omitempty"`
	// Shard is the model's shard provenance mark ("2/6", or "merged"
	// once it has absorbed other shards, "" for a plain whole-stream
	// model); Absorbed counts the merged-in shard checkpoints.
	Shard    string `json:"shard,omitempty"`
	Absorbed int    `json:"absorbed,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/models", s.handleCreate)
	s.mux.HandleFunc("GET /v1/models", s.handleList)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/models/{name}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/models/{name}/push", s.handlePush)
	s.mux.HandleFunc("POST /v1/models/{name}/push-sketch", s.handlePushSketch)
	s.mux.HandleFunc("POST /v1/models/{name}/merge", s.handleMerge)
	s.mux.HandleFunc("GET /v1/models/{name}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /v1/models/{name}/spectrum", s.handleSpectrum)
	s.mux.HandleFunc("GET /v1/models/{name}/modes", s.handleModes)
	s.mux.HandleFunc("GET /v1/models/{name}/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/models/{name}/reconstruct", s.handleReconstruct)
	s.mux.HandleFunc("POST /v1/models/{name}/project", s.handleProject)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	if status == http.StatusTooManyRequests && w.Header().Get("Retry-After") == "" {
		// The ingest handlers set a backlog-derived Retry-After before
		// calling here (enqueueOrReject); this fixed hint only covers 429s
		// raised with no model in hand.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: errorMessage(err)})
}

// enqueueOrReject hands req to the model's ingest queue; a full queue
// writes the 429 with a Retry-After derived from the live backlog (queue
// occupancy over the coalesce width — how many micro-batches must drain
// before room is guaranteed) instead of a fixed one-second guess.
func enqueueOrReject(w http.ResponseWriter, m *model, req *pushReq) bool {
	if err := m.enqueue(req); err != nil {
		if errors.Is(err, ErrBacklogFull) {
			w.Header().Set("Retry-After", strconv.Itoa(m.retryAfterSeconds()))
		}
		writeError(w, err)
		return false
	}
	return true
}

// decodeJSON reads one JSON value, mapping an oversized body to 413.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("server: request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "server: invalid JSON: " + err.Error()})
		return false
	}
	return true
}

// lookup resolves the {name} path segment; a miss writes the 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*model, bool) {
	m, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return nil, false
	}
	return m, true
}

// viewOf returns the model's current View; absence (no data pushed yet)
// writes the 409.
func viewOf(w http.ResponseWriter, m *model) (*View, bool) {
	v := m.currentView()
	if v == nil {
		writeError(w, fmt.Errorf("%w: push at least one snapshot batch first", ErrNoData))
		return nil, false
	}
	return v, true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	models := s.reg.list()
	resp := HealthResponse{Status: "ok", Models: len(models)}
	for _, m := range models {
		resp.Health = append(resp.Health, m.health())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec ModelSpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	info, err := s.CreateModel(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	models := s.reg.list()
	infos := make([]ModelInfo, 0, len(models))
	for _, m := range models {
		infos = append(infos, m.info())
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, m.info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.deleteModel(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePush enqueues one snapshot batch and waits for the ingest loop to
// apply it (possibly coalesced with its queue neighbors into one stacked
// engine update). A client that goes away while waiting gets a clean 499
// — never a backend abort string — and its batch may still be applied.
func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var mj MatrixJSON
	if !decodeJSON(w, r, &mj) {
		return
	}
	batch, err := mj.Matrix()
	if err != nil {
		writeError(w, err)
		return
	}
	req := &pushReq{batch: batch, errc: make(chan error, 1)}
	if !enqueueOrReject(w, m, req) {
		return
	}
	s.awaitPushAck(w, r, m, req)
}

// awaitPushAck waits for the ingest loop's verdict on a queued push (raw
// or sketched) and writes the ack or error. A client that goes away
// while waiting gets the context error; its request may still apply.
func (s *Server) awaitPushAck(w http.ResponseWriter, r *http.Request, m *model, req *pushReq) {
	select {
	case err := <-req.errc:
		if err != nil {
			writeError(w, err)
			return
		}
		ack := PushAck{}
		if v := m.currentView(); v != nil {
			ack = PushAck{Snapshots: v.Stats.Snapshots, Version: v.Version}
		}
		writeJSON(w, http.StatusOK, ack)
	case <-r.Context().Done():
		writeError(w, r.Context().Err())
	}
}

// handlePushSketch ingests one compressed sketch factor pair (see
// SketchPushJSON). The pair rides the model's single-writer queue like a
// push, but never coalesces with raw batches: it is one engine update
// with its own compressed WAL record. Factor-pair shape errors (mismatched
// inner dimension, wrong row count) surface from SVD.PushSketch as 400s.
func (s *Server) handlePushSketch(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var sj SketchPushJSON
	if !decodeJSON(w, r, &sj) {
		return
	}
	q, err := sj.Q.Matrix()
	if err != nil {
		writeError(w, err)
		return
	}
	sk, err := sj.S.Matrix()
	if err != nil {
		writeError(w, err)
		return
	}
	req := &pushReq{sketchQ: q, sketchS: sk, errc: make(chan error, 1)}
	if !enqueueOrReject(w, m, req) {
		return
	}
	s.awaitPushAck(w, r, m, req)
}

// handleMerge absorbs another decomposition into the target model: a
// named sibling model (its published view, snapshotted to checkpoint
// form without touching its live engine) or uploaded checkpoint bytes.
// The merge rides the target's single-writer ingest queue, so it is
// ordered against pushes and covered by the same WAL durability barrier;
// a corrupt or incompatible checkpoint is refused (400) after full
// validation, with the target untouched and still serving.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req MergeRequest
	if ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";"); strings.TrimSpace(ct) == "application/octet-stream" {
		// Raw checkpoint upload: the body IS the checkpoint, no base64
		// envelope. This is the path the coordinator (and client.Merge)
		// uses, streaming fetched shard checkpoints straight through.
		raw, err := io.ReadAll(r.Body)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeJSON(w, http.StatusRequestEntityTooLarge,
					errorResponse{Error: fmt.Sprintf("server: request body exceeds %d bytes", tooBig.Limit)})
				return
			}
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "server: reading checkpoint body: " + err.Error()})
			return
		}
		req.Checkpoint = raw
	} else if !decodeJSON(w, r, &req) {
		return
	}
	var ckpt []byte
	switch {
	case req.Model != "" && len(req.Checkpoint) > 0:
		writeError(w, fmt.Errorf("server: merge takes a model name or checkpoint bytes, not both"))
		return
	case req.Model != "":
		if req.Model == m.name {
			writeError(w, fmt.Errorf("server: model %s cannot merge with itself: shards must be disjoint", m.name))
			return
		}
		src, err := s.reg.get(req.Model)
		if err != nil {
			writeError(w, err)
			return
		}
		v, ok := viewOf(w, src)
		if !ok {
			return
		}
		if _, ok := modesOf(w, v); !ok {
			return
		}
		var buf bytes.Buffer
		if err := parsvd.WriteCheckpoint(&buf, src.svd.Configuration(), v.Result); err != nil {
			writeError(w, err)
			return
		}
		ckpt = buf.Bytes()
	case len(req.Checkpoint) > 0:
		ckpt = req.Checkpoint
	default:
		writeError(w, fmt.Errorf("server: merge needs a source: set model or checkpoint"))
		return
	}

	mreq := &pushReq{mergeCkpt: ckpt, errc: make(chan error, 1)}
	if !enqueueOrReject(w, m, mreq) {
		return
	}
	select {
	case err := <-mreq.errc:
		if err != nil {
			writeError(w, err)
			return
		}
		ack := MergeAck{MergeBound: m.svd.MergeBound()}
		if v := m.currentView(); v != nil {
			ack.Snapshots, ack.Version = v.Stats.Snapshots, v.Version
		}
		writeJSON(w, http.StatusOK, ack)
	case <-r.Context().Done():
		writeError(w, r.Context().Err())
	}
}

// handleCheckpoint serializes the model's current published View as
// checkpoint bytes — the coordinator's collection primitive: a
// shard-marked model exports a shard-stamped checkpoint that any
// MergeReaders/POST /merge reduce accepts. The checkpoint is built from
// the copy-on-publish View, never the live engine, so exports cost the
// ingest loop nothing; it is buffered fully before the first byte is
// written, so a mid-serialize fault is still a clean error status, not
// a torn download. Distributed models (modes live out of process) are
// refused with ErrNoModes — fetch from the model's own periodic
// checkpoint file instead.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookup(w, r)
	if !ok {
		return
	}
	v, ok := viewOf(w, m)
	if !ok {
		return
	}
	if _, ok := modesOf(w, v); !ok {
		return
	}
	var buf bytes.Buffer
	if err := parsvd.WriteCheckpoint(&buf, m.svd.Configuration(), v.Result); err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	w.Header().Set("X-Parsvd-Version", fmt.Sprint(v.Version))
	w.WriteHeader(http.StatusOK)
	buf.WriteTo(w)
}

func (s *Server) handleSpectrum(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookup(w, r)
	if !ok {
		return
	}
	v, ok := viewOf(w, m)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, SpectrumResponse{
		Singular:    v.Result.Singular,
		Version:     v.Version,
		Snapshots:   v.Result.Snapshots,
		ModesSHA256: v.Result.ModesSHA256,
	})
}

func (s *Server) handleModes(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookup(w, r)
	if !ok {
		return
	}
	v, ok := viewOf(w, m)
	if !ok {
		return
	}
	modes, ok := modesOf(w, v)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, ModesResponse{
		Modes:   NewMatrixJSON(modes),
		Version: v.Version,
	})
}

// modesOf extracts the view's mode matrix, reporting ErrNoModes for
// models whose modes live out of process (the distributed backend ships
// a fingerprint, not the matrix).
func modesOf(w http.ResponseWriter, v *View) (*parsvd.Matrix, bool) {
	if v.Result.Modes == nil {
		writeError(w, ErrNoModes)
		return nil, false
	}
	return v.Result.Modes, true
}

// handleStats serves counters from the last published stats snapshot plus
// the live queue gauge: no gather, no engine lock, so it stays cheap even
// while a model churns through a large update.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, m.info())
}

// handleProject maps M×B snapshots to K×B modal coefficients (Uᵀ·a)
// against the current View's modes — snapshot-isolated from ingest.
func (s *Server) handleProject(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookup(w, r)
	if !ok {
		return
	}
	v, ok := viewOf(w, m)
	if !ok {
		return
	}
	modes, ok := modesOf(w, v)
	if !ok {
		return
	}
	var mj MatrixJSON
	if !decodeJSON(w, r, &mj) {
		return
	}
	a, err := mj.Matrix()
	if err != nil {
		writeError(w, err)
		return
	}
	if a.Rows() != modes.Rows() {
		writeError(w, fmt.Errorf("server: project needs %d-row snapshots, got %d", modes.Rows(), a.Rows()))
		return
	}
	coeffs := parsvd.MulTransA(modes, a)
	writeJSON(w, http.StatusOK, MatrixResponse{Matrix: NewMatrixJSON(coeffs), Version: v.Version})
}

// handleReconstruct maps K×B coefficients back to snapshot space (U·c).
func (s *Server) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookup(w, r)
	if !ok {
		return
	}
	v, ok := viewOf(w, m)
	if !ok {
		return
	}
	modes, ok := modesOf(w, v)
	if !ok {
		return
	}
	var mj MatrixJSON
	if !decodeJSON(w, r, &mj) {
		return
	}
	c, err := mj.Matrix()
	if err != nil {
		writeError(w, err)
		return
	}
	if c.Rows() != modes.Cols() {
		writeError(w, fmt.Errorf("server: reconstruct needs %d-row coefficients, got %d", modes.Cols(), c.Rows()))
		return
	}
	snaps := parsvd.Mul(modes, c)
	writeJSON(w, http.StatusOK, MatrixResponse{Matrix: NewMatrixJSON(snaps), Version: v.Version})
}
