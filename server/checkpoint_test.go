package server_test

// Checkpoint export (GET /v1/models/{name}/checkpoint) and shard
// provenance surfacing: the endpoint serializes the published view as
// checkpoint bytes a coordinator can reduce, listings//healthz//metrics
// report which piece of a partitioned stream each model holds, and both
// survive a crash-reboot cycle.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	parsvd "goparsvd"
	"goparsvd/server"
)

// TestCheckpointEndpoint: the exported bytes are a loadable checkpoint
// of the published view, bit-identical in spectrum to what the server
// serves, and they round-trip through a merge.
func TestCheckpointEndpoint(t *testing.T) {
	const k = 6
	a := mergeTestMatrix()
	c := boot(t, server.Config{})
	ctx := context.Background()

	// Before any model: 404. Before any data: 409.
	_, err := c.Checkpoint(ctx, "nope")
	wantStatus(t, err, http.StatusNotFound)
	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "m", Modes: k}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Checkpoint(ctx, "m")
	wantStatus(t, err, http.StatusConflict)

	if _, err := c.Push(ctx, "m", a.SliceCols(0, 8)); err != nil {
		t.Fatal(err)
	}
	ckpt, err := c.Checkpoint(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := parsvd.Load(bytes.NewReader(ckpt))
	if err != nil {
		t.Fatalf("exported checkpoint does not load: %v", err)
	}
	defer loaded.Close()
	res, err := loaded.Result()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := c.Spectrum(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	wantBitIdentical(t, res.Singular, sp.Singular, "exported checkpoint")

	// The export snapshots the published view: a later push changes the
	// model but not already-fetched bytes.
	if _, err := c.Push(ctx, "m", a.SliceCols(8, 16)); err != nil {
		t.Fatal(err)
	}
	again, err := parsvd.Load(bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	res2, _ := again.Result()
	again.Close()
	wantBitIdentical(t, res2.Singular, res.Singular, "fetched bytes after push")
}

// TestCheckpointCarriesShardProvenance: a shard-marked model exports a
// shard-stamped checkpoint — reducible with full overlap validation,
// i.e. absorbing the same exported shard twice is refused.
func TestCheckpointCarriesShardProvenance(t *testing.T) {
	const k = 6
	a := mergeTestMatrix()
	c := boot(t, server.Config{})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		name := []string{"s0", "s1"}[i]
		if _, err := c.CreateModel(ctx, server.ModelSpec{
			Name: name, Modes: k, Shard: &server.ShardSpec{Index: i, Count: 2},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Push(ctx, name, a.SliceCols(i*8, i*8+8)); err != nil {
			t.Fatal(err)
		}
	}
	ck0, err := c.Checkpoint(ctx, "s0")
	if err != nil {
		t.Fatal(err)
	}
	ck1, err := c.Checkpoint(ctx, "s1")
	if err != nil {
		t.Fatal(err)
	}

	// Reduce the two exported shards locally: matches the monolithic fit.
	merged, err := parsvd.MergeReaders(bytes.NewReader(ck0), bytes.NewReader(ck1))
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	res, err := merged.Result()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, res.Singular, monolithicSpectrum(t, a, k, 4), 1e-10, "reduced exports")

	// The stamp survives the wire: the same shard twice is an overlap.
	if _, err := parsvd.MergeReaders(bytes.NewReader(ck0), bytes.NewReader(ck0)); err == nil {
		t.Fatal("duplicate exported shard merged, want ErrShardOverlap")
	}

	// And a server-side merge of both exports reproduces the monolithic
	// spectrum too (the coordinator's install path).
	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "agg", Modes: k}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Merge(ctx, "agg", bytes.NewReader(ck0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Merge(ctx, "agg", bytes.NewReader(ck1)); err != nil {
		t.Fatal(err)
	}
	spAgg, err := c.Spectrum(ctx, "agg")
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, spAgg.Singular, monolithicSpectrum(t, a, k, 4), 1e-10, "server-side reduce")
	_, err = c.Merge(ctx, "agg", bytes.NewReader(ck1))
	wantStatus(t, err, http.StatusBadRequest)
}

// TestShardProvenanceSurfaced: listings, /healthz and /metrics all
// report the shard mark of a shard-local model and the "merged" label
// (with absorbed count) of a reduce target.
func TestShardProvenanceSurfaced(t *testing.T) {
	const k = 6
	a := mergeTestMatrix()
	c := boot(t, server.Config{})
	ctx := context.Background()

	if _, err := c.CreateModel(ctx, server.ModelSpec{
		Name: "shard2", Modes: k, Shard: &server.ShardSpec{Index: 1, Count: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push(ctx, "shard2", a.SliceCols(8, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "agg", Modes: k}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Merge(ctx, "agg", bytes.NewReader(shardCheckpoint(t, a, 0, 8, k, 0, 2))); err != nil {
		t.Fatal(err)
	}
	ck, err := c.Checkpoint(ctx, "shard2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Merge(ctx, "agg", bytes.NewReader(ck)); err != nil {
		t.Fatal(err)
	}

	// Listings: the shard model reports its mark, the reduce target its
	// absorbed count.
	info, err := c.Model(ctx, "shard2")
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Shard != "1/2" {
		t.Errorf("shard model stats.shard = %q, want 1/2", info.Stats.Shard)
	}
	if info.Spec.Shard == nil || info.Spec.Shard.Index != 1 || info.Spec.Shard.Count != 2 {
		t.Errorf("shard model spec.shard = %+v, want {1 2}", info.Spec.Shard)
	}
	agg, err := c.Model(ctx, "agg")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Stats.Shard != "" || agg.Stats.Absorbed != 2 {
		t.Errorf("reduce target stats = shard %q absorbed %d, want \"\" 2", agg.Stats.Shard, agg.Stats.Absorbed)
	}

	// /healthz: "1/2" and "merged".
	var h server.HealthResponse
	getJSON(t, c.BaseURL+"/healthz", &h)
	byName := map[string]server.ModelHealth{}
	for _, mh := range h.Health {
		byName[mh.Name] = mh
	}
	if got := byName["shard2"].Shard; got != "1/2" {
		t.Errorf("healthz shard2 shard = %q, want 1/2", got)
	}
	if got := byName["agg"]; got.Shard != "merged" || got.Absorbed != 2 {
		t.Errorf("healthz agg = shard %q absorbed %d, want merged 2", got.Shard, got.Absorbed)
	}

	// /metrics: the parsvd_model_shard_info gauge.
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		`parsvd_model_shard_info{model="shard2",shard="1/2",absorbed="0"} 1`,
		`parsvd_model_shard_info{model="agg",shard="merged",absorbed="2"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestShardSpecSurvivesReboot: a shard-marked model keeps its mark
// across a crash-reboot cycle, whether restored from spec + WAL or from
// a checkpoint alone (specFromConfiguration), so a coordinator can
// always re-identify which shard a recovered node holds.
func TestShardSpecSurvivesReboot(t *testing.T) {
	const k = 6
	a := mergeTestMatrix()
	dir := t.TempDir()
	cfg := server.Config{CheckpointDir: dir, CheckpointInterval: time.Hour, Logf: func(string, ...any) {}}
	ctx := context.Background()

	s1 := bootCrashable(t, cfg)
	if _, err := s1.c.CreateModel(ctx, server.ModelSpec{
		Name: "s", Modes: k, Shard: &server.ShardSpec{Index: 1, Count: 3},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.c.Push(ctx, "s", a.SliceCols(0, 8)); err != nil {
		t.Fatal(err)
	}
	ckptBefore, err := s1.c.Checkpoint(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	s1.crash()

	s2 := bootCrashable(t, cfg)
	info, err := s2.c.Model(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	if info.Spec.Shard == nil || info.Spec.Shard.Index != 1 || info.Spec.Shard.Count != 3 {
		t.Fatalf("rebooted spec.shard = %+v, want {1 3}", info.Spec.Shard)
	}
	if info.Stats.Shard != "1/3" {
		t.Errorf("rebooted stats.shard = %q, want 1/3", info.Stats.Shard)
	}
	ckptAfter, err := s2.c.Checkpoint(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckptBefore, ckptAfter) {
		t.Error("exported checkpoint changed across reboot")
	}
	s2.ts.Close()
	if err := s2.srv.Close(); err != nil {
		t.Fatal(err)
	}
}
