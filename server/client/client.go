// Package client is the typed Go client of the parsvd serving API
// (goparsvd/server, cmd/parsvd-serve): model lifecycle, snapshot pushes
// and snapshot-isolated queries over HTTP JSON.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	parsvd "goparsvd"
	"goparsvd/server"
)

// Client talks to one parsvd server. The zero value is not usable;
// construct with New.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Retry, when enabled (MaxAttempts >= 2), makes calls retry transient
	// failures — backpressure, shutdown, and (for idempotent methods
	// only) network errors and 5xx — with capped exponential backoff,
	// jitter, and Retry-After support. The zero value keeps the old
	// single-attempt behavior.
	Retry RetryPolicy
}

// New returns a client for the server at base (scheme://host[:port]).
func New(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

// APIError is a non-2xx response: the HTTP status plus the server's
// error message and, when the response carried a Retry-After header, the
// wait it asked for.
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("parsvd server: HTTP %d: %s", e.StatusCode, e.Message)
}

// IsRetryable reports whether the request may succeed if simply retried:
// backpressure (429) and shutdown (503) responses.
func (e *APIError) IsRetryable() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode == http.StatusServiceUnavailable
}

// do runs a JSON round trip under the client's retry policy. in == nil
// skips the request body, out == nil discards the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		payload = buf
	}
	var mkBody func() io.Reader
	if in != nil {
		mkBody = func() io.Reader { return bytes.NewReader(payload) }
	}
	return c.retryLoop(ctx, method, path, "application/json", mkBody, out)
}

// doStream runs a raw-body round trip (Content-Type contentType) under
// the retry policy. The body is streamed as-is — no buffering copy. When
// it implements io.Seeker (a bytes.Reader, an *os.File) retries rewind
// and resend it; a one-shot stream gets a single attempt.
func (c *Client) doStream(ctx context.Context, method, path, contentType string, body io.Reader, out any) error {
	seeker, _ := body.(io.Seeker)
	var start int64
	if seeker != nil {
		pos, err := seeker.Seek(0, io.SeekCurrent)
		if err != nil {
			seeker = nil
		} else {
			start = pos
		}
	}
	first := true
	mkBody := func() io.Reader {
		if first {
			first = false
			return body
		}
		if seeker == nil {
			return nil // signals retryLoop the body cannot be resent
		}
		if _, err := seeker.Seek(start, io.SeekStart); err != nil {
			return nil
		}
		return body
	}
	return c.retryLoop(ctx, method, path, contentType, mkBody, out)
}

// retryLoop drives attempts under the retry policy. mkBody is called per
// attempt for a fresh request body (nil mkBody: bodiless request; a nil
// return on a retry ends the loop — the body cannot be replayed).
func (c *Client) retryLoop(ctx context.Context, method, path, contentType string, mkBody func() io.Reader, out any) error {
	attempts := c.Retry.attempts()
	for attempt := 0; ; attempt++ {
		var body io.Reader
		if mkBody != nil {
			if body = mkBody(); body == nil && attempt > 0 {
				return fmt.Errorf("client: request body cannot be replayed for a retry (use a seekable reader)")
			}
		}
		err := c.once(ctx, method, path, contentType, body, out)
		if err == nil {
			return nil
		}
		if attempt+1 >= attempts || !retryable(method, err) {
			return err
		}
		if sleepErr := sleepCtx(ctx, c.Retry.delay(attempt, err)); sleepErr != nil {
			// The deadline or cancellation ended the retry loop; report it
			// together with what we were retrying.
			return fmt.Errorf("client: %w (giving up on retries; last error: %v)", sleepErr, err)
		}
	}
}

// once is a single HTTP attempt. out == nil discards the response body;
// *[]byte receives it raw; anything else is JSON-decoded into.
func (c *Client) once(ctx context.Context, method, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg, RetryAfter: parseRetryAfter(resp)}
	}
	switch dst := out.(type) {
	case nil:
		io.Copy(io.Discard, resp.Body)
	case *[]byte:
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("client: reading response: %w", err)
		}
		*dst = raw
	default:
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decoding response: %w", err)
		}
	}
	return nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	var h server.HealthResponse
	return c.do(ctx, http.MethodGet, "/healthz", nil, &h)
}

// CreateModel registers a new streaming decomposition.
func (c *Client) CreateModel(ctx context.Context, spec server.ModelSpec) (server.ModelInfo, error) {
	var info server.ModelInfo
	err := c.do(ctx, http.MethodPost, "/v1/models", spec, &info)
	return info, err
}

// Models lists the registered models, sorted by name.
func (c *Client) Models(ctx context.Context) ([]server.ModelInfo, error) {
	var infos []server.ModelInfo
	err := c.do(ctx, http.MethodGet, "/v1/models", nil, &infos)
	return infos, err
}

// Model fetches one model's info and stats.
func (c *Client) Model(ctx context.Context, name string) (server.ModelInfo, error) {
	var info server.ModelInfo
	err := c.do(ctx, http.MethodGet, "/v1/models/"+name, nil, &info)
	return info, err
}

// DeleteModel unregisters a model and removes its checkpoint.
func (c *Client) DeleteModel(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/models/"+name, nil, nil)
}

// Push ingests one M×B snapshot batch and waits until the server's
// ingest loop has applied it (possibly coalesced with concurrent pushes
// into one engine update). A 429 means the model's queue is full —
// back off and retry.
func (c *Client) Push(ctx context.Context, name string, batch *parsvd.Matrix) (server.PushAck, error) {
	var ack server.PushAck
	err := c.do(ctx, http.MethodPost, "/v1/models/"+name+"/push", server.NewMatrixJSON(batch), &ack)
	return ack, err
}

// PushSketched ingests one compressed sketch factor pair (Q, S) —
// produced by parsvd.Sketch from an M×B batch — instead of the full
// batch: the request carries L·(M+B) values rather than M·B, and the
// server reconstructs (or forwards the pair to its distributed fleet) on
// its side of the wire. The ack semantics match Push: 2xx means applied
// (and durable under a WAL), 429 means back off and retry.
func (c *Client) PushSketched(ctx context.Context, name string, q, s *parsvd.Matrix) (server.PushAck, error) {
	var ack server.PushAck
	err := c.do(ctx, http.MethodPost, "/v1/models/"+name+"/push-sketch",
		server.SketchPushJSON{Q: server.NewMatrixJSON(q), S: server.NewMatrixJSON(s)}, &ack)
	return ack, err
}

// Merge absorbs a shard-local fit into the named model: checkpoint
// streams raw bytes produced by parsvd.Save / parsvd.WriteCheckpoint /
// Client.Checkpoint to the server as application/octet-stream — no
// base64 envelope, no forced in-memory copy. Pass a seekable reader (a
// bytes.Reader, an *os.File) to let the retry policy rewind and resend
// on 429/503; a one-shot stream gets a single attempt. The merge rides
// the model's ingest loop, so a 2xx ack means it is applied (and
// durable, when the server runs a WAL). To merge a sibling model that
// lives on the same server, use MergeModel.
func (c *Client) Merge(ctx context.Context, name string, checkpoint io.Reader) (server.MergeAck, error) {
	var ack server.MergeAck
	err := c.doStream(ctx, http.MethodPost, "/v1/models/"+name+"/merge", "application/octet-stream", checkpoint, &ack)
	return ack, err
}

// MergeModel absorbs source — another model on the same server — into
// the target model. The server snapshots source's published view into
// checkpoint form and merges it, without disturbing source's live
// engine.
func (c *Client) MergeModel(ctx context.Context, target, source string) (server.MergeAck, error) {
	var ack server.MergeAck
	err := c.do(ctx, http.MethodPost, "/v1/models/"+target+"/merge", server.MergeRequest{Model: source}, &ack)
	return ack, err
}

// Checkpoint fetches the model's current published view serialized as
// checkpoint bytes — loadable with parsvd.Load, mergeable with
// SVD.Merge / parsvd.MergeReaders / Client.Merge. For shard-marked
// models the checkpoint carries the shard provenance stamp, so a
// coordinator can fetch each node's shard fit and reduce them with full
// overlap validation.
func (c *Client) Checkpoint(ctx context.Context, name string) ([]byte, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/models/"+name+"/checkpoint", nil, &raw)
	return raw, err
}

// Spectrum fetches the singular values of the model's current view.
func (c *Client) Spectrum(ctx context.Context, name string) (server.SpectrumResponse, error) {
	var sp server.SpectrumResponse
	err := c.do(ctx, http.MethodGet, "/v1/models/"+name+"/spectrum", nil, &sp)
	return sp, err
}

// Modes fetches the M×K mode matrix of the model's current view, plus
// the view version it belongs to.
func (c *Client) Modes(ctx context.Context, name string) (*parsvd.Matrix, uint64, error) {
	var mr server.ModesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/models/"+name+"/modes", nil, &mr); err != nil {
		return nil, 0, err
	}
	m, err := mr.Modes.Matrix()
	if err != nil {
		return nil, 0, err
	}
	return m, mr.Version, nil
}

// Project maps M×B snapshots to K×B modal coefficients (Uᵀ·a) against
// the server's current view.
func (c *Client) Project(ctx context.Context, name string, snapshots *parsvd.Matrix) (*parsvd.Matrix, error) {
	return c.matrixCall(ctx, name, "project", snapshots)
}

// Reconstruct maps K×B coefficients back to M×B snapshot space (U·c).
func (c *Client) Reconstruct(ctx context.Context, name string, coeffs *parsvd.Matrix) (*parsvd.Matrix, error) {
	return c.matrixCall(ctx, name, "reconstruct", coeffs)
}

func (c *Client) matrixCall(ctx context.Context, name, op string, in *parsvd.Matrix) (*parsvd.Matrix, error) {
	var mr server.MatrixResponse
	if err := c.do(ctx, http.MethodPost, "/v1/models/"+name+"/"+op, server.NewMatrixJSON(in), &mr); err != nil {
		return nil, err
	}
	return mr.Matrix.Matrix()
}
