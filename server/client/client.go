// Package client is the typed Go client of the parsvd serving API
// (goparsvd/server, cmd/parsvd-serve): model lifecycle, snapshot pushes
// and snapshot-isolated queries over HTTP JSON.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	parsvd "goparsvd"
	"goparsvd/server"
)

// Client talks to one parsvd server. The zero value is not usable;
// construct with New.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Retry, when enabled (MaxAttempts >= 2), makes calls retry transient
	// failures — backpressure, shutdown, and (for idempotent methods
	// only) network errors and 5xx — with capped exponential backoff,
	// jitter, and Retry-After support. The zero value keeps the old
	// single-attempt behavior.
	Retry RetryPolicy
}

// New returns a client for the server at base (scheme://host[:port]).
func New(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

// APIError is a non-2xx response: the HTTP status plus the server's
// error message and, when the response carried a Retry-After header, the
// wait it asked for.
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("parsvd server: HTTP %d: %s", e.StatusCode, e.Message)
}

// IsRetryable reports whether the request may succeed if simply retried:
// backpressure (429) and shutdown (503) responses.
func (e *APIError) IsRetryable() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode == http.StatusServiceUnavailable
}

// do runs a JSON round trip under the client's retry policy. in == nil
// skips the request body, out == nil discards the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		payload = buf
	}
	attempts := c.Retry.attempts()
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, in != nil, payload, out)
		if err == nil {
			return nil
		}
		if attempt+1 >= attempts || !retryable(method, err) {
			return err
		}
		if sleepErr := sleepCtx(ctx, c.Retry.delay(attempt, err)); sleepErr != nil {
			// The deadline or cancellation ended the retry loop; report it
			// together with what we were retrying.
			return fmt.Errorf("client: %w (giving up on retries; last error: %v)", sleepErr, err)
		}
	}
}

// once is a single HTTP attempt. The payload is a fresh reader each call,
// so retries resend the full body.
func (c *Client) once(ctx context.Context, method, path string, hasBody bool, payload []byte, out any) error {
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg, RetryAfter: parseRetryAfter(resp)}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	var h server.HealthResponse
	return c.do(ctx, http.MethodGet, "/healthz", nil, &h)
}

// CreateModel registers a new streaming decomposition.
func (c *Client) CreateModel(ctx context.Context, spec server.ModelSpec) (server.ModelInfo, error) {
	var info server.ModelInfo
	err := c.do(ctx, http.MethodPost, "/v1/models", spec, &info)
	return info, err
}

// Models lists the registered models, sorted by name.
func (c *Client) Models(ctx context.Context) ([]server.ModelInfo, error) {
	var infos []server.ModelInfo
	err := c.do(ctx, http.MethodGet, "/v1/models", nil, &infos)
	return infos, err
}

// Model fetches one model's info and stats.
func (c *Client) Model(ctx context.Context, name string) (server.ModelInfo, error) {
	var info server.ModelInfo
	err := c.do(ctx, http.MethodGet, "/v1/models/"+name, nil, &info)
	return info, err
}

// DeleteModel unregisters a model and removes its checkpoint.
func (c *Client) DeleteModel(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/models/"+name, nil, nil)
}

// Push ingests one M×B snapshot batch and waits until the server's
// ingest loop has applied it (possibly coalesced with concurrent pushes
// into one engine update). A 429 means the model's queue is full —
// back off and retry.
func (c *Client) Push(ctx context.Context, name string, batch *parsvd.Matrix) (server.PushAck, error) {
	var ack server.PushAck
	err := c.do(ctx, http.MethodPost, "/v1/models/"+name+"/push", server.NewMatrixJSON(batch), &ack)
	return ack, err
}

// Merge absorbs another shard-local fit into the named model. The
// request either names a source model on the same server (Model) or
// carries raw checkpoint bytes produced by parsvd.Save /
// parsvd.WriteCheckpoint (Checkpoint) — exactly one of the two. The
// merge rides the model's ingest loop, so a 2xx ack means it is applied
// (and durable, when the server runs a WAL).
func (c *Client) Merge(ctx context.Context, name string, req server.MergeRequest) (server.MergeAck, error) {
	var ack server.MergeAck
	err := c.do(ctx, http.MethodPost, "/v1/models/"+name+"/merge", req, &ack)
	return ack, err
}

// Spectrum fetches the singular values of the model's current view.
func (c *Client) Spectrum(ctx context.Context, name string) (server.SpectrumResponse, error) {
	var sp server.SpectrumResponse
	err := c.do(ctx, http.MethodGet, "/v1/models/"+name+"/spectrum", nil, &sp)
	return sp, err
}

// Modes fetches the M×K mode matrix of the model's current view, plus
// the view version it belongs to.
func (c *Client) Modes(ctx context.Context, name string) (*parsvd.Matrix, uint64, error) {
	var mr server.ModesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/models/"+name+"/modes", nil, &mr); err != nil {
		return nil, 0, err
	}
	m, err := mr.Modes.Matrix()
	if err != nil {
		return nil, 0, err
	}
	return m, mr.Version, nil
}

// Project maps M×B snapshots to K×B modal coefficients (Uᵀ·a) against
// the server's current view.
func (c *Client) Project(ctx context.Context, name string, snapshots *parsvd.Matrix) (*parsvd.Matrix, error) {
	return c.matrixCall(ctx, name, "project", snapshots)
}

// Reconstruct maps K×B coefficients back to M×B snapshot space (U·c).
func (c *Client) Reconstruct(ctx context.Context, name string, coeffs *parsvd.Matrix) (*parsvd.Matrix, error) {
	return c.matrixCall(ctx, name, "reconstruct", coeffs)
}

func (c *Client) matrixCall(ctx context.Context, name, op string, in *parsvd.Matrix) (*parsvd.Matrix, error) {
	var mr server.MatrixResponse
	if err := c.do(ctx, http.MethodPost, "/v1/models/"+name+"/"+op, server.NewMatrixJSON(in), &mr); err != nil {
		return nil, err
	}
	return mr.Matrix.Matrix()
}
