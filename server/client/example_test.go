package client_test

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	parsvd "goparsvd"
	"goparsvd/server"
	"goparsvd/server/client"
)

// Example boots an in-process parsvd server, creates a model, streams a
// small snapshot matrix into it in batches and reads the decomposition
// back — the whole serving round trip in one place. Against a real
// deployment, replace the httptest URL with the parsvd-serve address.
func Example() {
	srv, err := server.New(server.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	ctx := context.Background()
	c := client.New(ts.URL)

	if _, err := c.CreateModel(ctx, server.ModelSpec{
		Name:         "demo",
		Modes:        3,
		ForgetFactor: 0.95,
	}); err != nil {
		log.Fatal(err)
	}

	// A deterministic 8x12 snapshot matrix, streamed in 4-column batches.
	const rows, cols, batch = 8, 12, 4
	snaps := parsvd.NewMatrix(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			snaps.Set(i, j, float64((i+1)*(j+2)%7)+0.5*float64(i))
		}
	}
	var ack server.PushAck
	for at := 0; at < cols; at += batch {
		if ack, err = c.Push(ctx, "demo", snaps.SliceCols(at, at+batch)); err != nil {
			log.Fatal(err)
		}
	}

	spectrum, err := c.Spectrum(ctx, "demo")
	if err != nil {
		log.Fatal(err)
	}
	modes, _, err := c.Modes(ctx, "demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshots=%d singular_values=%d modes=%dx%d\n",
		ack.Snapshots, len(spectrum.Singular), modes.Rows(), modes.Cols())
	// Output: snapshots=12 singular_values=3 modes=8x3
}

// ExampleClient_Checkpoint is the fetch→merge round trip — the
// coordinator's collection primitive. Two shard-marked models each fit
// a disjoint half of a snapshot stream; their published views are
// fetched as shard-stamped checkpoint bytes and streamed into a reduce
// model, which ends up covering the full stream. Against a real
// deployment the three models would live on different serve nodes and
// the same four calls would cross machines.
func ExampleClient_Checkpoint() {
	srv, err := server.New(server.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	ctx := context.Background()
	c := client.New(ts.URL)
	c.Retry = client.RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond}

	const rows, cols = 8, 12
	snaps := parsvd.NewMatrix(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			snaps.Set(i, j, float64((i+2)*(j+3)%11)+0.25*float64(i))
		}
	}

	// Each shard model fits its half of the columns, marked i-of-2.
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("flow.s%dof2", i)
		if _, err := c.CreateModel(ctx, server.ModelSpec{
			Name: name, Modes: 3, Shard: &server.ShardSpec{Index: i, Count: 2},
		}); err != nil {
			log.Fatal(err)
		}
		if _, err := c.Push(ctx, name, snaps.SliceCols(i*6, i*6+6)); err != nil {
			log.Fatal(err)
		}
	}

	// Collect and reduce: fetch each shard checkpoint, merge it into the
	// full model. A bytes.Reader is seekable, so the retry policy can
	// rewind and resend an upload after a 429.
	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "flow", Modes: 3}); err != nil {
		log.Fatal(err)
	}
	var ack server.MergeAck
	for i := 0; i < 2; i++ {
		ckpt, err := c.Checkpoint(ctx, fmt.Sprintf("flow.s%dof2", i))
		if err != nil {
			log.Fatal(err)
		}
		if ack, err = c.Merge(ctx, "flow", bytes.NewReader(ckpt)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("reduced 2 shards into flow: %d snapshots\n", ack.Snapshots)
	// Output: reduced 2 shards into flow: 12 snapshots
}

// ExampleClient_retries shows a client that rides out backpressure: with a
// RetryPolicy set, a 429 (full ingest queue) is retried with capped
// exponential backoff and jitter, honoring any Retry-After the server
// sends — instead of surfacing the first rejection to the caller.
func ExampleClient_retries() {
	// A server whose first two responses are backpressure.
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"server: ingest queue is full, retry later"}`)
			return
		}
		fmt.Fprint(w, `{"snapshots":4,"version":1}`)
	}))
	defer ts.Close()

	c := client.New(ts.URL)
	c.Retry = client.RetryPolicy{
		MaxAttempts: 5,                      // first try + up to 4 retries
		BaseDelay:   10 * time.Millisecond,  // attempt n sleeps ~BaseDelay*2^n ...
		MaxDelay:    200 * time.Millisecond, // ... capped here, jittered by default
	}

	// Push retries through the two 429s: those are safe to retry because
	// the server guarantees a rejected push was not applied. (Network
	// errors and plain 5xx are retried only for idempotent calls.)
	batch := parsvd.NewMatrix(3, 4)
	ack, err := c.Push(context.Background(), "demo", batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acked after %d attempts: snapshots=%d\n", hits.Load(), ack.Snapshots)
	// Output: acked after 3 attempts: snapshots=4
}
