package client_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	parsvd "goparsvd"
	"goparsvd/server"
	"goparsvd/server/client"
)

// Example boots an in-process parsvd server, creates a model, streams a
// small snapshot matrix into it in batches and reads the decomposition
// back — the whole serving round trip in one place. Against a real
// deployment, replace the httptest URL with the parsvd-serve address.
func Example() {
	srv, err := server.New(server.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	ctx := context.Background()
	c := client.New(ts.URL)

	if _, err := c.CreateModel(ctx, server.ModelSpec{
		Name:         "demo",
		Modes:        3,
		ForgetFactor: 0.95,
	}); err != nil {
		log.Fatal(err)
	}

	// A deterministic 8x12 snapshot matrix, streamed in 4-column batches.
	const rows, cols, batch = 8, 12, 4
	snaps := parsvd.NewMatrix(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			snaps.Set(i, j, float64((i+1)*(j+2)%7)+0.5*float64(i))
		}
	}
	var ack server.PushAck
	for at := 0; at < cols; at += batch {
		if ack, err = c.Push(ctx, "demo", snaps.SliceCols(at, at+batch)); err != nil {
			log.Fatal(err)
		}
	}

	spectrum, err := c.Spectrum(ctx, "demo")
	if err != nil {
		log.Fatal(err)
	}
	modes, _, err := c.Modes(ctx, "demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshots=%d singular_values=%d modes=%dx%d\n",
		ack.Snapshots, len(spectrum.Singular), modes.Rows(), modes.Cols())
	// Output: snapshots=12 singular_values=3 modes=8x3
}
