package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"time"
)

// RetryPolicy makes a Client retry transient failures with capped
// exponential backoff and jitter. The zero value disables retries (every
// call is a single attempt, the pre-retry behavior); set MaxAttempts >= 2
// to enable.
//
// What gets retried is deliberately conservative, because a retry must
// never double-apply a push:
//
//   - 429 (backpressure) and 503 (shutting down / model closed) are
//     retried for every method: the server guarantees the request was NOT
//     applied when it reports them.
//   - Network errors and other 5xx responses are retried only for
//     idempotent methods (GET, DELETE). A POST that died mid-flight may
//     have been applied — snapshot pushes are not idempotent, so the
//     client surfaces the error instead of guessing.
//
// A Retry-After header (429/503 responses carry one) overrides the
// computed backoff when it asks for a longer wait. Sleeps respect the
// request context: cancellation or a deadline ends the retry loop
// immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// 0 or 1 disables retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt n sleeps about
	// BaseDelay·2ⁿ. Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 5s.
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized: the sleep
	// is drawn uniformly from [delay·(1−Jitter), delay], which spreads
	// synchronized clients (thundering herd) apart. 0 means the default
	// 0.5; negative disables jitter.
	Jitter float64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delay computes the sleep before retry number attempt (0-based), honoring
// a server-provided Retry-After when it is longer than the backoff.
func (p RetryPolicy) delay(attempt int, err error) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > max { // <= 0: shift overflow
		d = max
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.5
	}
	if jitter > 0 {
		if jitter > 1 {
			jitter = 1
		}
		d -= time.Duration(rand.Float64() * jitter * float64(d))
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
	}
	return d
}

// retryable reports whether err may be retried for the given method
// without risking a double apply.
func retryable(method string, err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		if apiErr.IsRetryable() { // 429/503: guaranteed not applied
			return true
		}
		return apiErr.StatusCode >= 500 && idempotent(method)
	}
	// No HTTP response at all: a network error. The request may or may
	// not have reached the server.
	return idempotent(method)
}

func idempotent(method string) bool {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodDelete, http.MethodPut:
		return true
	}
	return false
}

// sleepCtx sleeps d or until the context ends, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter reads a Retry-After response header: delta-seconds or an
// HTTP date. 0 when absent or unparseable.
func parseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	var secs int
	if _, err := fmt.Sscanf(v, "%d", &secs); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if when, err := http.ParseTime(v); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}
