package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flaky builds a handler that fails the first n requests with fail, then
// answers 200 {"ok":true}. It returns the handler and a counter of
// requests seen.
func flaky(n int, fail func(w http.ResponseWriter)) (http.HandlerFunc, *atomic.Int64) {
	var seen atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) <= int64(n) {
			fail(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	}, &seen
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		Jitter:      -1,
	}
}

func TestRetryOn429WithRetryAfter(t *testing.T) {
	h, seen := flaky(2, func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"queue full"}`))
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(5)
	// POST is retried on 429: the server guarantees it was not applied.
	if err := c.do(context.Background(), http.MethodPost, "/", map[string]int{"x": 1}, nil); err != nil {
		t.Fatalf("POST through 2x429: %v", err)
	}
	if got := seen.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

func TestRetryAfterHeaderStretchesBackoff(t *testing.T) {
	h, _ := flaky(1, func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(3) // backoff alone would be ~1ms
	start := time.Now()
	if err := c.do(context.Background(), http.MethodGet, "/", nil, nil); err != nil {
		t.Fatalf("GET through 429: %v", err)
	}
	if took := time.Since(start); took < time.Second {
		t.Fatalf("retry slept %v; Retry-After: 1 should stretch it past 1s", took)
	}
}

// TestRetryAfterValueReachesBackoff: the server's queue-occupancy
// estimate (a Retry-After of several seconds, not the old constant "1")
// must land in APIError.RetryAfter and stretch RetryPolicy.delay to at
// least that value — without this, the client would hammer a deep
// backlog at its own 1ms backoff cadence.
func TestRetryAfterValueReachesBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"queue full"}`))
	}))
	defer ts.Close()

	c := New(ts.URL) // zero policy: single attempt surfaces the APIError
	err := c.do(context.Background(), http.MethodPost, "/", map[string]int{"x": 1}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("got %v, want APIError", err)
	}
	if apiErr.RetryAfter != 7*time.Second {
		t.Fatalf("APIError.RetryAfter = %v, want the server-computed 7s", apiErr.RetryAfter)
	}
	p := fastRetry(3) // backoff alone would be ~1ms
	if d := p.delay(0, err); d != 7*time.Second {
		t.Fatalf("delay = %v, want the server-computed 7s", d)
	}
}

func TestRetryOn500OnlyForIdempotent(t *testing.T) {
	h, seen := flaky(1, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"transient"}`))
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(5)
	if err := c.do(context.Background(), http.MethodGet, "/", nil, nil); err != nil {
		t.Fatalf("GET through 500: %v", err)
	}
	if got := seen.Load(); got != 2 {
		t.Fatalf("server saw %d GETs, want 2", got)
	}

	// A POST that 500s may have been applied server-side; it must NOT be
	// retried.
	seen.Store(0)
	err := c.do(context.Background(), http.MethodPost, "/", map[string]int{"x": 1}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("POST through 500: got %v, want APIError 500", err)
	}
	if got := seen.Load(); got != 1 {
		t.Fatalf("server saw %d POSTs, want 1 (no retry)", got)
	}
}

func TestRetryOnConnectionReset(t *testing.T) {
	var seen atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) == 1 {
			// Hijack and slam the connection: the client sees a read error,
			// not an HTTP response.
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(3)
	// GET retries through the reset...
	if err := c.do(context.Background(), http.MethodGet, "/", nil, nil); err != nil {
		t.Fatalf("GET through connection reset: %v", err)
	}
	// ...but POST must not: the request may have been applied.
	seen.Store(0)
	if err := c.do(context.Background(), http.MethodPost, "/", map[string]int{"x": 1}, nil); err == nil {
		t.Fatal("POST through connection reset: want error, got nil")
	}
	if got := seen.Load(); got != 1 {
		t.Fatalf("server saw %d POSTs, want 1 (no retry)", got)
	}
}

func TestRetryRespectsContextDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(5)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.do(ctx, http.MethodGet, "/", nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("deadline did not cut the Retry-After sleep short (took %v)", took)
	}
}

func TestRetryExhaustionReturnsLastError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"still full"}`))
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(3)
	err := c.do(context.Background(), http.MethodGet, "/", nil, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("got %v, want APIError 429 after exhaustion", err)
	}
}

func TestZeroPolicyIsSingleAttempt(t *testing.T) {
	h, seen := flaky(1, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusTooManyRequests)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL) // zero RetryPolicy
	if err := c.do(context.Background(), http.MethodGet, "/", nil, nil); err == nil {
		t.Fatal("want the 429 surfaced, got nil")
	}
	if got := seen.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

func TestBackoffDelaysAreCappedAndJittered(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5}
	for attempt := 0; attempt < 40; attempt++ {
		d := p.delay(attempt, errors.New("x"))
		if d <= 0 || d > time.Second {
			t.Fatalf("attempt %d: delay %v outside (0, 1s]", attempt, d)
		}
	}
	// Jitter -1 disables randomization: the delay is exact.
	exact := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: -1}
	if d := exact.delay(1, errors.New("x")); d != 200*time.Millisecond {
		t.Fatalf("unjittered delay = %v, want 200ms", d)
	}
	if d := exact.delay(30, errors.New("x")); d != time.Second {
		t.Fatalf("capped delay = %v, want 1s", d)
	}
}
