package server_test

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	parsvd "goparsvd"
	"goparsvd/internal/launch"
	"goparsvd/internal/testutil"
	"goparsvd/server"
	"goparsvd/server/client"
)

// buildServeOnce caches the parsvd-serve binary for the crash suite: one
// `go build` per test process, shared by every subtest.
var buildServeOnce struct {
	sync.Once
	path string
	err  error
}

func buildServe(t *testing.T) string {
	t.Helper()
	buildServeOnce.Do(func() {
		goBin, err := exec.LookPath("go")
		if err != nil {
			buildServeOnce.err = fmt.Errorf("no Go toolchain to build parsvd-serve: %w", err)
			return
		}
		dir, err := os.MkdirTemp("", "parsvd-serve-*")
		if err != nil {
			buildServeOnce.err = err
			return
		}
		out := filepath.Join(dir, "parsvd-serve")
		cmd := exec.Command(goBin, "build", "-o", out, "goparsvd/cmd/parsvd-serve")
		if msg, err := cmd.CombinedOutput(); err != nil {
			buildServeOnce.err = fmt.Errorf("building parsvd-serve: %v\n%s", err, msg)
			return
		}
		buildServeOnce.path = out
	})
	if buildServeOnce.err != nil {
		t.Fatal(buildServeOnce.err)
	}
	return buildServeOnce.path
}

// serveProc is a real parsvd-serve process under test control.
type serveProc struct {
	cmd  *exec.Cmd
	addr string
}

// startServe launches parsvd-serve on a kernel-picked port and parses the
// bound address from its log output. extraEnv rides on top of the test
// environment (PARSVD_WORKER for distributed models).
func startServe(t *testing.T, bin string, args []string, extraEnv []string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), extraEnv...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("serve: %s", line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &serveProc{cmd: cmd, addr: addr}
	case <-time.After(30 * time.Second):
		t.Fatal("parsvd-serve never reported its listen address")
		return nil
	}
}

func (p *serveProc) client() *client.Client {
	c := client.New("http://" + p.addr)
	// Boots race the first request; ride out connection refusals.
	c.Retry = client.RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond}
	return c
}

// sigkill is the crash: kill -9, no signal handler, no flush, no goodbye.
func (p *serveProc) sigkill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

// sigterm is the graceful counterpart, used to shut the reboot down.
func (p *serveProc) sigterm(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// drainBatches materializes the deterministic workload stream.
func drainBatches(t *testing.T, w parsvd.Workload, ranks int) []*parsvd.Matrix {
	t.Helper()
	src, err := parsvd.FromWorkload(w, ranks)
	if err != nil {
		t.Fatal(err)
	}
	var batches []*parsvd.Matrix
	for {
		b, err := src.Next(context.Background())
		if err == io.EOF {
			return batches
		}
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, b)
	}
}

// TestCrashRecoverySIGKILL is the crash gate (make crash-smoke): a real
// parsvd-serve process is SIGKILLed mid-stream — after a known prefix of
// acked pushes — and rebooted on the same directory. The rebooted server
// must serve the spectrum of exactly that acked prefix, within 1e-12 of an
// uninterrupted in-process run: zero acked pushes lost, none applied
// twice. Runs across all three backends; the distributed model's recovery
// re-spawns its worker fleet and re-feeds it from the WAL.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("crash gate spawns real processes; skipped in -short")
	}
	bin := buildServe(t)

	cases := []struct {
		name    string
		backend string
		ranks   int
		// ckptInterval decides what recovery exercises: 1h means pure
		// spec+WAL replay; a short interval lets periodic checkpoints (and
		// WAL rotations) race the kill, so recovery stacks remaining WAL
		// records on a checkpoint base.
		ckptInterval string
	}{
		{name: "serial", backend: "serial", ranks: 1, ckptInterval: "200ms"},
		{name: "parallel", backend: "parallel", ranks: 2, ckptInterval: "1h"},
		{name: "distributed", backend: "distributed", ranks: 2, ckptInterval: "1h"},
	}

	// Distributed models need the worker binary; resolve (and build) it
	// once here instead of inside the SIGKILL timing window.
	workerBin, err := launch.ResolveWorker()
	if err != nil {
		t.Fatalf("resolving parsvd-worker: %v", err)
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			w := parsvd.DefaultWorkload()
			w.RowsPerRank = 48
			w.Snapshots = 96
			w.InitBatch = 24
			w.Batch = 12
			w.K = 6
			w.R1 = 12

			batches := drainBatches(t, w, tc.ranks)
			killAfter := (len(batches) * 3) / 5 // acked prefix at the kill
			if killAfter < 2 {
				t.Fatalf("workload too small: %d batches", len(batches))
			}

			dir := t.TempDir()
			args := []string{
				"-checkpoint-dir", dir,
				"-checkpoint-interval", tc.ckptInterval,
				"-fsync", "always",
			}
			env := []string{launch.WorkerEnv + "=" + workerBin}

			p1 := startServe(t, bin, args, env)
			c1 := p1.client()
			if _, err := c1.CreateModel(ctx, server.ModelSpec{
				Name:         "crash",
				Modes:        w.K,
				ForgetFactor: w.FF,
				InitRank:     w.R1,
				Backend:      tc.backend,
				Ranks:        tc.ranks,
			}); err != nil {
				t.Fatal(err)
			}
			acked := 0
			for _, b := range batches[:killAfter] {
				if _, err := c1.Push(ctx, "crash", b); err != nil {
					t.Fatal(err)
				}
				acked += b.Cols()
			}
			p1.sigkill(t)

			// Uninterrupted in-process reference over the acked prefix.
			ref, err := parsvd.New(parsvd.WithModes(w.K), parsvd.WithForgetFactor(w.FF), parsvd.WithInitRank(w.R1))
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			for _, b := range batches[:killAfter] {
				if err := ref.Push(b); err != nil {
					t.Fatal(err)
				}
			}
			want, err := ref.Result()
			if err != nil {
				t.Fatal(err)
			}

			// Reboot on the same directory: replay must reconstruct the
			// acked prefix exactly.
			p2 := startServe(t, bin, args, env)
			c2 := p2.client()
			info, err := c2.Model(ctx, "crash")
			if err != nil {
				t.Fatalf("model did not survive the crash: %v", err)
			}
			if info.Stats.Snapshots != acked {
				t.Fatalf("recovered %d snapshots, want the %d acked before SIGKILL", info.Stats.Snapshots, acked)
			}
			got, err := c2.Spectrum(ctx, "crash")
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Singular) != len(want.Singular) {
				t.Fatalf("recovered spectrum has %d values, want %d", len(got.Singular), len(want.Singular))
			}
			var maxDiff float64
			for i := range want.Singular {
				if d := math.Abs(got.Singular[i] - want.Singular[i]); d > maxDiff {
					maxDiff = d
				}
			}
			if maxDiff > 1e-12 {
				t.Fatalf("recovered spectrum deviates from the uninterrupted run by %g, want <= 1e-12", maxDiff)
			}

			// The survivor keeps streaming: push the rest of the workload.
			for _, b := range batches[killAfter:] {
				if _, err := c2.Push(ctx, "crash", b); err != nil {
					t.Fatal(err)
				}
			}
			info, err = c2.Model(ctx, "crash")
			if err != nil {
				t.Fatal(err)
			}
			if info.Stats.Snapshots != w.Snapshots {
				t.Fatalf("post-recovery stream reached %d snapshots, want %d", info.Stats.Snapshots, w.Snapshots)
			}
			p2.sigterm(t)
			t.Logf("crash-smoke %s: killed after %d/%d acked pushes, recovered with max deviation %g",
				tc.name, killAfter, len(batches), maxDiff)
		})
	}
}

// TestCrashRecoveryMergeSIGKILL is the merge half of the crash gate: a
// real parsvd-serve process is SIGKILLed around a /merge and rebooted on
// the same directory. The WAL makes the merge atomic-on-disk — the
// absorbed checkpoint is one record, logged after the engine applied it
// and before the ack — so recovery must land on exactly the pre-merge or
// the post-merge state, never anything in between. Two phases: an acked
// merge must survive the kill (durability), and a kill racing the merge
// request must still recover to one of the two legal states (atomicity).
func TestCrashRecoveryMergeSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("crash gate spawns real processes; skipped in -short")
	}
	bin := buildServe(t)
	ctx := context.Background()

	w := parsvd.DefaultWorkload()
	w.RowsPerRank = 48
	w.Snapshots = 96
	w.InitBatch = 24
	w.Batch = 12
	w.K = 6
	w.R1 = 12
	w.FF = 1.0 // the merge operand is fit without recency weighting
	batches := drainBatches(t, w, 1)
	killAfter := (len(batches) * 3) / 5
	acked := 0
	for _, b := range batches[:killAfter] {
		acked += b.Cols()
	}

	// The merge operand: a shard-local fit over a fresh rank-4 block with
	// the model's row count, saved to checkpoint bytes once and reused for
	// the server upload and both references.
	shardData, _ := testutil.RandomLowRank(w.RowsPerRank, 16, 4, 0, testutil.NewRand(11))
	ckpt := shardCheckpoint(t, shardData, 0, 16, w.K, 1, 2)
	const mergeSnaps = 16

	// preWant / postWant: uninterrupted in-process references for the two
	// legal recovery states.
	refSpectrum := func(withMerge bool) []float64 {
		ref, err := parsvd.New(parsvd.WithModes(w.K), parsvd.WithForgetFactor(w.FF), parsvd.WithInitRank(w.R1))
		if err != nil {
			t.Fatal(err)
		}
		defer ref.Close()
		for _, b := range batches[:killAfter] {
			if err := ref.Push(b); err != nil {
				t.Fatal(err)
			}
		}
		if withMerge {
			if err := ref.Merge(bytes.NewReader(ckpt)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := ref.Result()
		if err != nil {
			t.Fatal(err)
		}
		return res.Singular
	}
	preWant, postWant := refSpectrum(false), refSpectrum(true)

	spectrumDiff := func(got, want []float64) float64 {
		if len(got) != len(want) {
			return math.Inf(1)
		}
		var max float64
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > max {
				max = d
			}
		}
		return max
	}

	for _, phase := range []struct {
		name      string
		waitAck   bool // kill only after the merge is acked
		wantMerge string
	}{
		{name: "acked-merge-survives", waitAck: true, wantMerge: "post"},
		{name: "racing-kill-atomic", waitAck: false, wantMerge: "either"},
	} {
		t.Run(phase.name, func(t *testing.T) {
			dir := t.TempDir()
			args := []string{
				"-checkpoint-dir", dir,
				"-checkpoint-interval", "1h",
				"-fsync", "always",
			}
			p1 := startServe(t, bin, args, nil)
			c1 := p1.client()
			if _, err := c1.CreateModel(ctx, server.ModelSpec{
				Name: "crash", Modes: w.K, ForgetFactor: w.FF, InitRank: w.R1,
			}); err != nil {
				t.Fatal(err)
			}
			for _, b := range batches[:killAfter] {
				if _, err := c1.Push(ctx, "crash", b); err != nil {
					t.Fatal(err)
				}
			}

			mergeDone := make(chan error, 1)
			go func() {
				_, err := c1.Merge(ctx, "crash", bytes.NewReader(ckpt))
				mergeDone <- err
			}()
			if phase.waitAck {
				if err := <-mergeDone; err != nil {
					t.Fatal(err)
				}
			}
			p1.sigkill(t)

			p2 := startServe(t, bin, args, nil)
			c2 := p2.client()
			info, err := c2.Model(ctx, "crash")
			if err != nil {
				t.Fatalf("model did not survive the crash: %v", err)
			}
			got, err := c2.Spectrum(ctx, "crash")
			if err != nil {
				t.Fatal(err)
			}

			preDiff, postDiff := spectrumDiff(got.Singular, preWant), spectrumDiff(got.Singular, postWant)
			switch {
			case info.Stats.Snapshots == acked+mergeSnaps && postDiff <= 1e-12:
				if phase.wantMerge == "pre" {
					t.Fatalf("recovered to post-merge state, want pre-merge")
				}
				t.Logf("%s: recovered post-merge, deviation %g", phase.name, postDiff)
			case info.Stats.Snapshots == acked && preDiff <= 1e-12:
				if phase.wantMerge == "post" {
					t.Fatalf("acked merge lost: recovered to pre-merge state")
				}
				t.Logf("%s: recovered pre-merge, deviation %g", phase.name, preDiff)
			default:
				t.Fatalf("recovered to a state that is neither pre- nor post-merge: %d snapshots (pre %d / post %d), deviation pre %g post %g",
					info.Stats.Snapshots, acked, acked+mergeSnaps, preDiff, postDiff)
			}

			// The survivor keeps streaming.
			if _, err := c2.Push(ctx, "crash", batches[killAfter]); err != nil {
				t.Fatal(err)
			}
			p2.sigterm(t)
		})
	}
}
