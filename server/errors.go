package server

import (
	"context"
	"errors"
	"net/http"
	"strings"

	parsvd "goparsvd"
)

// Sentinel errors of the serving layer. Handlers map them onto HTTP
// status codes through httpStatus; the client package maps the codes
// back.
var (
	// ErrModelNotFound reports a model name absent from the registry.
	ErrModelNotFound = errors.New("server: model not found")
	// ErrModelExists reports a create for a name already registered.
	ErrModelExists = errors.New("server: model already exists")
	// ErrBacklogFull is the backpressure signal: the model's bounded
	// ingest queue is full and the push was not enqueued. Clients should
	// retry after a backoff (HTTP 429).
	ErrBacklogFull = errors.New("server: ingest queue is full, retry later")
	// ErrModelClosed reports a push to a model that is shutting down.
	ErrModelClosed = errors.New("server: model is closed")
	// ErrServerClosed reports a model create after (or racing) Close.
	ErrServerClosed = errors.New("server: server is closed")
	// ErrNoData reports a read from a model that has not ingested any
	// snapshot batch yet, so no view has been published.
	ErrNoData = errors.New("server: model has no data yet")
	// ErrNoModes reports a modes/project/reconstruct request against a
	// model that serves no mode matrix: a distributed model's modes live
	// row-distributed in its worker processes (the view carries their
	// SHA-256 fingerprint instead), and only a checkpoint gathers them.
	ErrNoModes = errors.New("server: model serves no mode matrix (distributed backend); read the spectrum, stats or a checkpoint instead")
	// ErrNotDurable reports a push that was applied in memory but whose
	// write-ahead log append failed: the 200 durability contract cannot
	// be met, so the pusher gets a 500 instead of an ack. The log refuses
	// non-contiguous records afterwards, so every later push fails the
	// same way until the operator repairs the disk — the model never
	// silently diverges from its durable history.
	ErrNotDurable = errors.New("server: push applied in memory but not durable (write-ahead log append failed)")
)

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) reported when the client goes away while its push is
// waiting in the ingest queue.
const StatusClientClosedRequest = 499

// httpStatus maps an error onto the HTTP status code the API reports.
// Context errors are checked first so a canceled handler never surfaces a
// backend abort string: the client sees a clean 499/504.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrModelNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrModelExists):
		return http.StatusConflict
	case errors.Is(err, ErrBacklogFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrModelClosed), errors.Is(err, ErrServerClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNoData), errors.Is(err, ErrNoModes):
		return http.StatusConflict
	case errors.Is(err, ErrNotDurable):
		// The push was applied but could not be logged: a server-side
		// storage fault, not a caller mistake.
		return http.StatusInternalServerError
	case errors.Is(err, parsvd.ErrEngineFailed):
		// A permanently failed engine (rank panic, aborted collective) is
		// a server-side fault, not a caller mistake.
		return http.StatusInternalServerError
	}
	// Belt and braces for engine faults that predate the typed sentinel.
	if msg := err.Error(); strings.Contains(msg, "abort") || strings.Contains(msg, "panic") {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// errorMessage rewrites internal error text that should not leak to HTTP
// clients verbatim. Cancellation in particular must read as a clean
// client-side condition, not as a backend abort trace.
func errorMessage(err error) string {
	switch {
	case errors.Is(err, context.Canceled):
		return "client closed the request before the push was applied; it may still be applied by the ingest loop"
	case errors.Is(err, context.DeadlineExceeded):
		return "request deadline exceeded before the push was applied; it may still be applied by the ingest loop"
	}
	return err.Error()
}
