package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	parsvd "goparsvd"
)

func quietConfig() Config {
	cfg := Config{Logf: func(string, ...any) {}}
	cfg.fillDefaults()
	return cfg
}

// detMatrix builds a deterministic rows×cols matrix.
func detMatrix(rows, cols int, seed float64) *parsvd.Matrix {
	m := parsvd.NewMatrix(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			m.Set(i, j, seed+float64((i+2)*(j+3)%11)+0.25*float64(i)-0.5*float64(j))
		}
	}
	return m
}

// TestMicroBatchCoalescingBitIdentical is the micro-batch equivalence
// proof: N single-snapshot pushes sitting in the queue must be coalesced
// into ONE stacked engine update whose spectrum and modes are bit-
// identical to pushing the stacked matrix directly (serial backend).
func TestMicroBatchCoalescingBitIdentical(t *testing.T) {
	const rows, n = 32, 12
	full := detMatrix(rows, n, 1.0)

	opts := []parsvd.Option{parsvd.WithModes(4), parsvd.WithForgetFactor(0.95)}
	svd, err := parsvd.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quietConfig()
	cfg.QueueDepth = n + 4
	cfg.MaxCoalesce = n + 4

	// Enqueue all N single-column pushes BEFORE the ingest loop starts,
	// so the first drain sees them all at once.
	m := newModel(ModelSpec{Name: "coalesce"}, svd, cfg)
	reqs := make([]*pushReq, n)
	for j := 0; j < n; j++ {
		reqs[j] = &pushReq{batch: full.SliceCols(j, j+1), errc: make(chan error, 1)}
		if err := m.enqueue(reqs[j]); err != nil {
			t.Fatalf("enqueue %d: %v", j, err)
		}
	}
	m.run()
	defer m.shutdown(false)
	for j, req := range reqs {
		if err := <-req.errc; err != nil {
			t.Fatalf("push %d: %v", j, err)
		}
	}

	v := m.currentView()
	if v == nil {
		t.Fatal("no view published")
	}
	if v.Version != 1 {
		t.Fatalf("queued pushes were applied in %d updates, want 1 coalesced update", v.Version)
	}

	// Reference: the same stacked matrix in one direct Push.
	ref, err := parsvd.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Push(full); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Result()
	if err != nil {
		t.Fatal(err)
	}

	if len(v.Result.Singular) != len(want.Singular) {
		t.Fatalf("spectrum length %d, want %d", len(v.Result.Singular), len(want.Singular))
	}
	for i := range want.Singular {
		if v.Result.Singular[i] != want.Singular[i] {
			t.Fatalf("singular[%d] = %v, want bit-identical %v", i, v.Result.Singular[i], want.Singular[i])
		}
	}
	got, wantModes := v.Result.Modes, want.Modes
	if got.Rows() != wantModes.Rows() || got.Cols() != wantModes.Cols() {
		t.Fatalf("modes %dx%d, want %dx%d", got.Rows(), got.Cols(), wantModes.Rows(), wantModes.Cols())
	}
	for i := 0; i < got.Rows(); i++ {
		for j := 0; j < got.Cols(); j++ {
			if got.At(i, j) != wantModes.At(i, j) {
				t.Fatalf("modes[%d,%d] = %v, want bit-identical %v", i, j, got.At(i, j), wantModes.At(i, j))
			}
		}
	}
}

// TestCoalesceRespectsMaxCoalesce: more queued pushes than MaxCoalesce
// must split into multiple updates, all applied.
func TestCoalesceRespectsMaxCoalesce(t *testing.T) {
	const rows, n = 16, 10
	svd, err := parsvd.New(parsvd.WithModes(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quietConfig()
	cfg.QueueDepth = n
	cfg.MaxCoalesce = 4
	m := newModel(ModelSpec{Name: "split"}, svd, cfg)
	reqs := make([]*pushReq, n)
	for j := 0; j < n; j++ {
		reqs[j] = &pushReq{batch: detMatrix(rows, 1, float64(j)), errc: make(chan error, 1)}
		if err := m.enqueue(reqs[j]); err != nil {
			t.Fatal(err)
		}
	}
	m.run()
	defer m.shutdown(false)
	for _, req := range reqs {
		if err := <-req.errc; err != nil {
			t.Fatal(err)
		}
	}
	v := m.currentView()
	if v == nil || v.Stats.Snapshots != n {
		t.Fatalf("view = %+v, want %d snapshots", v, n)
	}
	if v.Version < 3 {
		t.Fatalf("version %d: %d pushes with MaxCoalesce=4 should take >= 3 updates", v.Version, n)
	}
}

func pushBody(t *testing.T, m *parsvd.Matrix) []byte {
	t.Helper()
	buf, err := json.Marshal(NewMatrixJSON(m))
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestBackpressureAndClientCancel drives the bounded-queue contract over
// HTTP against a model whose ingest loop has not started (a stalled
// writer): a push whose client goes away gets a clean 499 — never a
// backend abort string — and the next push meets a full queue and gets
// 429. Once the writer comes back, the queued push is still applied.
func TestBackpressureAndClientCancel(t *testing.T) {
	s, err := New(Config{QueueDepth: 1, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	svd, err := parsvd.New(parsvd.WithModes(2))
	if err != nil {
		t.Fatal(err)
	}
	m := newModel(ModelSpec{Name: "stall"}, svd, s.cfg) // loop intentionally not running
	if err := s.reg.add(m); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	body := pushBody(t, detMatrix(8, 1, 0))

	// Client gone while its push waits in the queue: 499, clean message.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/models/stall/push", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled push: HTTP %d, want %d (body %s)", rec.Code, StatusClientClosedRequest, rec.Body)
	}
	msg := rec.Body.String()
	if !strings.Contains(msg, "client closed the request") {
		t.Fatalf("canceled push body %q lacks the clean cancellation message", msg)
	}
	if strings.Contains(msg, "abort") || strings.Contains(msg, "context canceled") {
		t.Fatalf("canceled push leaks internal error text: %q", msg)
	}

	// The queue (depth 1) now holds that push: the next one is refused
	// with 429 + Retry-After.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/models/stall/push", bytes.NewReader(body)))
	if rec.Code != 429 {
		t.Fatalf("push against full queue: HTTP %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 response lacks Retry-After")
	}

	// Writer recovers: the queued push (whose client got 499) applies.
	m.run()
	deadline := time.Now().Add(5 * time.Second)
	for m.currentView() == nil {
		if time.Now().After(deadline) {
			t.Fatal("queued push was never applied after the ingest loop started")
		}
		time.Sleep(time.Millisecond)
	}
	if v := m.currentView(); v.Stats.Snapshots != 1 {
		t.Fatalf("snapshots = %d, want 1", v.Stats.Snapshots)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRetryAfterDerivedFromQueueOccupancy: the 429 Retry-After header is
// not a constant — it estimates drain time as ceil(pending/MaxCoalesce)
// seconds (clamped to [1, 30]), so a deeper backlog tells clients to
// stay away longer.
func TestRetryAfterDerivedFromQueueOccupancy(t *testing.T) {
	s, err := New(Config{QueueDepth: 6, MaxCoalesce: 2, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	svd, err := parsvd.New(parsvd.WithModes(2))
	if err != nil {
		t.Fatal(err)
	}
	m := newModel(ModelSpec{Name: "busy"}, svd, s.cfg) // stalled writer
	if err := s.reg.add(m); err != nil {
		t.Fatal(err)
	}

	// An empty queue still asks for the 1-second floor.
	if got := m.retryAfterSeconds(); got != 1 {
		t.Fatalf("retryAfterSeconds with empty queue = %d, want 1", got)
	}

	// Fill the queue against the stalled writer: 6 pending pushes with
	// MaxCoalesce=2 drain in ~3 coalesced updates.
	var reqs []*pushReq
	for j := 0; j < 6; j++ {
		req := &pushReq{batch: detMatrix(8, 1, float64(j)), errc: make(chan error, 1)}
		if err := m.enqueue(req); err != nil {
			t.Fatalf("enqueue %d: %v", j, err)
		}
		reqs = append(reqs, req)
	}
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/models/busy/push", bytes.NewReader(pushBody(t, detMatrix(8, 1, 9)))))
	if rec.Code != 429 {
		t.Fatalf("push against full queue: HTTP %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\" (ceil(6 pending / MaxCoalesce 2))", got)
	}

	// The sketched-push ingress shares the same backpressure contract.
	sketchBody, err := json.Marshal(SketchPushJSON{
		Q: NewMatrixJSON(detMatrix(8, 2, 0)),
		S: NewMatrixJSON(detMatrix(2, 1, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/models/busy/push-sketch", bytes.NewReader(sketchBody)))
	if rec.Code != 429 {
		t.Fatalf("push-sketch against full queue: HTTP %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("push-sketch Retry-After = %q, want \"3\"", got)
	}

	// The estimate is clamped at 30 seconds no matter how deep the queue.
	m.pending.Store(1000)
	if got := m.retryAfterSeconds(); got != 30 {
		t.Fatalf("retryAfterSeconds with 1000 pending = %d, want the 30s clamp", got)
	}
	m.pending.Store(int64(len(reqs)))

	// Writer recovers; everything queued drains cleanly.
	m.run()
	for j, req := range reqs {
		if err := <-req.errc; err != nil {
			t.Fatalf("queued push %d: %v", j, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownFlushesQueue: pushes still queued when Close begins must be
// applied (and answered) before Close returns.
func TestShutdownFlushesQueue(t *testing.T) {
	s, err := New(Config{QueueDepth: 8, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	svd, err := parsvd.New(parsvd.WithModes(2))
	if err != nil {
		t.Fatal(err)
	}
	m := newModel(ModelSpec{Name: "flush"}, svd, s.cfg) // stalled writer
	if err := s.reg.add(m); err != nil {
		t.Fatal(err)
	}
	var reqs []*pushReq
	for j := 0; j < 5; j++ {
		req := &pushReq{batch: detMatrix(8, 1, float64(j)), errc: make(chan error, 1)}
		if err := m.enqueue(req); err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, req)
	}
	m.run()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for j, req := range reqs {
		select {
		case err := <-req.errc:
			if err != nil {
				t.Fatalf("flushed push %d: %v", j, err)
			}
		default:
			t.Fatalf("push %d unanswered after Close", j)
		}
	}
	if v := m.currentView(); v == nil || v.Stats.Snapshots != 5 {
		t.Fatalf("view after flush = %+v, want 5 snapshots", v)
	}
}
