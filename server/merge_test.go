package server_test

// Server-side merge: POST /v1/models/{name}/merge rides the target's
// single-writer ingest queue, so merges order against pushes and fall
// under the same WAL durability barrier. These tests cover the two
// source forms (uploaded checkpoint bytes, sibling model), the
// validation contract (a corrupt or incompatible checkpoint is a 400
// that leaves the target serving unchanged), adopting into an empty
// model, and crash recovery through the WAL's merge records.

import (
	"bytes"
	"context"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	parsvd "goparsvd"
	"goparsvd/server"
	"goparsvd/server/client"

	"goparsvd/internal/testutil"
)

// mergeTestMatrix is exactly rank 4 with no noise floor: a K = 6 fit
// keeps every direction, so merging disjoint column shards is exact and
// sharded-vs-monolithic agreement is rounding-level.
func mergeTestMatrix() *parsvd.Matrix {
	a, _ := testutil.RandomLowRank(32, 16, 4, 0, testutil.NewRand(7))
	return a
}

// shardCheckpoint fits columns [lo, hi) of a as one shard-local model
// and returns its checkpoint bytes, stamped with WithShard provenance.
func shardCheckpoint(t *testing.T, a *parsvd.Matrix, lo, hi, k, index, count int) []byte {
	t.Helper()
	svd, err := parsvd.New(parsvd.WithModes(k), parsvd.WithShard(index, count))
	if err != nil {
		t.Fatal(err)
	}
	defer svd.Close()
	if _, err := svd.Fit(context.Background(), parsvd.FromMatrix(a.SliceCols(lo, hi), 4)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := svd.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// monolithicSpectrum is the ground truth: one serial fit over all of a.
func monolithicSpectrum(t *testing.T, a *parsvd.Matrix, k, batch int) []float64 {
	t.Helper()
	svd, err := parsvd.New(parsvd.WithModes(k))
	if err != nil {
		t.Fatal(err)
	}
	defer svd.Close()
	res, err := svd.Fit(context.Background(), parsvd.FromMatrix(a, batch))
	if err != nil {
		t.Fatal(err)
	}
	return res.Singular
}

func wantClose(t *testing.T, got, want []float64, tol float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: spectrum length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > tol {
			t.Fatalf("%s: singular[%d] = %v, want %v (|diff| = %g > %g)", what, i, got[i], want[i], d, tol)
		}
	}
}

// TestMergeUpload: the target ingests half the columns over HTTP, the
// other half arrives as an uploaded shard checkpoint, and the merged
// spectrum must match the monolithic fit of the full matrix. The model
// keeps streaming afterwards on the serial backend.
func TestMergeUpload(t *testing.T) {
	const k = 6
	a := mergeTestMatrix()
	c := boot(t, server.Config{})
	ctx := context.Background()

	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "target", Modes: k}); err != nil {
		t.Fatal(err)
	}
	for at := 0; at < 8; at += 4 {
		if _, err := c.Push(ctx, "target", a.SliceCols(at, at+4)); err != nil {
			t.Fatal(err)
		}
	}
	ckpt := shardCheckpoint(t, a, 8, 16, k, 1, 2)

	ack, err := c.Merge(ctx, "target", bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Snapshots != 16 {
		t.Fatalf("merge ack snapshots = %d, want 16", ack.Snapshots)
	}
	if ack.MergeBound > 1e-12 {
		t.Fatalf("exact-rank merge reports bound %g, want ~0", ack.MergeBound)
	}

	sp, err := c.Spectrum(ctx, "target")
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, sp.Singular, monolithicSpectrum(t, a, k, 4), 1e-10, "merged upload")

	// The merged model keeps ingesting and reports the serial backend.
	ack2, err := c.Push(ctx, "target", testMatrix(32, 4))
	if err != nil {
		t.Fatal(err)
	}
	if ack2.Snapshots != 20 {
		t.Fatalf("post-merge push snapshots = %d, want 20", ack2.Snapshots)
	}
	info, err := c.Model(ctx, "target")
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Backend != "serial" {
		t.Fatalf("post-merge backend %q, want serial", info.Stats.Backend)
	}
}

// TestMergeModelToModel: two sibling models each fit half the columns;
// merging one into the other by name must reproduce the monolithic
// spectrum while leaving the source model untouched.
func TestMergeModelToModel(t *testing.T) {
	const k = 6
	a := mergeTestMatrix()
	c := boot(t, server.Config{})
	ctx := context.Background()

	for _, m := range []struct {
		name   string
		lo, hi int
	}{{"left", 0, 8}, {"right", 8, 16}} {
		if _, err := c.CreateModel(ctx, server.ModelSpec{Name: m.name, Modes: k}); err != nil {
			t.Fatal(err)
		}
		for at := m.lo; at < m.hi; at += 4 {
			if _, err := c.Push(ctx, m.name, a.SliceCols(at, at+4)); err != nil {
				t.Fatal(err)
			}
		}
	}
	srcBefore, err := c.Spectrum(ctx, "right")
	if err != nil {
		t.Fatal(err)
	}

	ack, err := c.MergeModel(ctx, "left", "right")
	if err != nil {
		t.Fatal(err)
	}
	if ack.Snapshots != 16 {
		t.Fatalf("merge ack snapshots = %d, want 16", ack.Snapshots)
	}
	sp, err := c.Spectrum(ctx, "left")
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, sp.Singular, monolithicSpectrum(t, a, k, 4), 1e-10, "model-to-model merge")

	// The source is read through its published view, never mutated.
	srcAfter, err := c.Spectrum(ctx, "right")
	if err != nil {
		t.Fatal(err)
	}
	wantBitIdentical(t, srcAfter.Singular, srcBefore.Singular, "merge source")
}

// TestMergeRequestValidation: malformed requests are refused before
// anything reaches the ingest queue.
func TestMergeRequestValidation(t *testing.T) {
	c := boot(t, server.Config{})
	ctx := context.Background()
	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "m", Modes: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push(ctx, "m", testMatrix(8, 4)); err != nil {
		t.Fatal(err)
	}

	// Neither source and both sources set — posted as raw JSON, since the
	// typed client can no longer express these malformed shapes: 400.
	if got := postMergeJSON(t, c, "m", `{}`); got != http.StatusBadRequest {
		t.Fatalf("merge with no source: HTTP %d, want 400", got)
	}
	if got := postMergeJSON(t, c, "m", `{"model":"m2","checkpoint":"AQ=="}`); got != http.StatusBadRequest {
		t.Fatalf("merge with both sources: HTTP %d, want 400", got)
	}
	// Self-merge: 400.
	_, err := c.MergeModel(ctx, "m", "m")
	wantStatus(t, err, http.StatusBadRequest)
	// Unknown target model and unknown source model: 404.
	_, err = c.MergeModel(ctx, "nope", "m")
	wantStatus(t, err, http.StatusNotFound)
	_, err = c.MergeModel(ctx, "m", "nope")
	wantStatus(t, err, http.StatusNotFound)
	// A source model with no data yet has no view to snapshot: 409.
	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "hollow", Modes: 3}); err != nil {
		t.Fatal(err)
	}
	_, err = c.MergeModel(ctx, "m", "hollow")
	wantStatus(t, err, http.StatusConflict)
}

// postMergeJSON posts a hand-built JSON merge body (the legacy
// MergeRequest envelope) and returns the HTTP status.
func postMergeJSON(t *testing.T, c *client.Client, name, body string) int {
	t.Helper()
	resp, err := http.Post(c.BaseURL+"/v1/models/"+name+"/merge", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// TestMergeCorruptUploadDoesNotPoison is the fuzz/fault satellite of the
// merge subsystem: garbage bytes, a truncated real checkpoint, and an
// incompatible (different K) checkpoint must each come back 400 with the
// target's spectrum bit-identical and ingest still live — a refused
// merge is a no-op, not a fault.
func TestMergeCorruptUploadDoesNotPoison(t *testing.T) {
	const k = 6
	a := mergeTestMatrix()
	c := boot(t, server.Config{})
	ctx := context.Background()
	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "m", Modes: k}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push(ctx, "m", a.SliceCols(0, 8)); err != nil {
		t.Fatal(err)
	}
	before, err := c.Spectrum(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}

	good := shardCheckpoint(t, a, 8, 16, k, 1, 2)
	for _, tc := range []struct {
		name string
		ckpt []byte
	}{
		{"garbage", []byte("these are not the bytes you are looking for")},
		{"truncated", good[:40]},
		{"wrong-k", shardCheckpoint(t, a, 8, 16, k+2, 1, 2)},
	} {
		_, err := c.Merge(ctx, "m", bytes.NewReader(tc.ckpt))
		wantStatus(t, err, http.StatusBadRequest)
		after, err := c.Spectrum(ctx, "m")
		if err != nil {
			t.Fatalf("%s: target stopped serving after refused merge: %v", tc.name, err)
		}
		wantBitIdentical(t, after.Singular, before.Singular, tc.name)
		info, err := c.Model(ctx, "m")
		if err != nil {
			t.Fatal(err)
		}
		if info.IngestErr != "" {
			t.Fatalf("%s: refused merge recorded an ingest fault: %q", tc.name, info.IngestErr)
		}
	}

	// The model is not soured: the good checkpoint still merges and a
	// push still lands.
	if _, err := c.Merge(ctx, "m", bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	}
	ack, err := c.Push(ctx, "m", testMatrix(32, 4))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Snapshots != 20 {
		t.Fatalf("post-recovery push snapshots = %d, want 20", ack.Snapshots)
	}
}

// TestMergeIntoEmptyModel: merging into a model that has seen no data
// adopts the checkpoint outright (the degenerate single-operand merge)
// and the model continues as if restored from it.
func TestMergeIntoEmptyModel(t *testing.T) {
	const k = 6
	a := mergeTestMatrix()
	c := boot(t, server.Config{})
	ctx := context.Background()
	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "blank", Modes: k}); err != nil {
		t.Fatal(err)
	}

	ckpt := shardCheckpoint(t, a, 0, 16, k, 0, 1)
	ack, err := c.Merge(ctx, "blank", bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Snapshots != 16 {
		t.Fatalf("adopt ack snapshots = %d, want 16", ack.Snapshots)
	}
	sp, err := c.Spectrum(ctx, "blank")
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, sp.Singular, monolithicSpectrum(t, a, k, 4), 1e-12, "adopted checkpoint")
	if _, err := c.Push(ctx, "blank", testMatrix(32, 4)); err != nil {
		t.Fatal(err)
	}
}

// TestMergeWALReplay: a merge is one WAL record (the absorbed
// checkpoint, verbatim) between batch records; a crash after the ack
// must recover the model — batches, merge, more batches — bit-for-bit
// from spec + WAL alone, with no checkpoint ever written.
func TestMergeWALReplay(t *testing.T) {
	const k = 6
	a := mergeTestMatrix()
	dir := t.TempDir()
	cfg := server.Config{CheckpointDir: dir, CheckpointInterval: time.Hour, Logf: func(string, ...any) {}}
	ctx := context.Background()

	s1 := bootCrashable(t, cfg)
	if _, err := s1.c.CreateModel(ctx, server.ModelSpec{Name: "m", Modes: k}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.c.Push(ctx, "m", a.SliceCols(0, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.c.Push(ctx, "m", a.SliceCols(4, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.c.Merge(ctx, "m", bytes.NewReader(shardCheckpoint(t, a, 8, 16, k, 1, 2))); err != nil {
		t.Fatal(err)
	}
	// One more batch after the merge, so replay must cross the merge
	// record and keep going on the post-merge serial engine.
	if _, err := s1.c.Push(ctx, "m", testMatrix(32, 4)); err != nil {
		t.Fatal(err)
	}
	want, err := s1.c.Spectrum(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	s1.crash()

	s2 := bootCrashable(t, cfg)
	got, err := s2.c.Spectrum(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	wantBitIdentical(t, got.Singular, want.Singular, "merge replay")
	var h server.HealthResponse
	getJSON(t, s2.ts.URL+"/healthz", &h)
	if len(h.Health) != 1 || h.Health[0].ReplayedOnBoot != 4 {
		t.Fatalf("post-recovery health %+v, want replayed_on_boot=4", h.Health)
	}
	s2.crash()

	// Replay is idempotent: a second boot on the untouched dir agrees.
	s3 := bootCrashable(t, cfg)
	again, err := s3.c.Spectrum(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	wantBitIdentical(t, again.Singular, want.Singular, "second merge replay")
	// And the recovered model still ingests and still logs.
	if _, err := s3.c.Push(ctx, "m", testMatrix(32, 4)); err != nil {
		t.Fatal(err)
	}
	s3.ts.Close()
	if err := s3.srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeShardOverlapRefused: the server surfaces the facade's
// provenance checks — absorbing the same shard twice is a 400.
func TestMergeShardOverlapRefused(t *testing.T) {
	const k = 6
	a := mergeTestMatrix()
	c := boot(t, server.Config{})
	ctx := context.Background()
	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "m", Modes: k}); err != nil {
		t.Fatal(err)
	}
	ckpt := shardCheckpoint(t, a, 0, 8, k, 0, 2)
	if _, err := c.Merge(ctx, "m", bytes.NewReader(ckpt)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Merge(ctx, "m", bytes.NewReader(ckpt))
	wantStatus(t, err, http.StatusBadRequest)
	// The sibling shard is still welcome.
	if _, err := c.Merge(ctx, "m", bytes.NewReader(shardCheckpoint(t, a, 8, 16, k, 1, 2))); err != nil {
		t.Fatal(err)
	}
}
