package server

import (
	"fmt"
	"net/http"
)

// handleMetrics exposes Prometheus-style plaintext gauges. Everything
// here comes from already-published stats snapshots and queue counters —
// no gather, no engine lock — so scraping stays cheap and contention-free
// under ingest load.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP parsvd_http_requests_total HTTP requests served.\n")
	fmt.Fprintf(w, "# TYPE parsvd_http_requests_total counter\n")
	fmt.Fprintf(w, "parsvd_http_requests_total %d\n", s.requests.Load())
	fmt.Fprintf(w, "# HELP parsvd_models Registered models.\n")
	fmt.Fprintf(w, "# TYPE parsvd_models gauge\n")
	fmt.Fprintf(w, "parsvd_models %d\n", s.reg.count())

	fmt.Fprintf(w, "# HELP parsvd_model_snapshots Snapshot columns ingested per model.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_snapshots counter\n")
	fmt.Fprintf(w, "# HELP parsvd_model_updates Engine updates applied per model.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_updates counter\n")
	fmt.Fprintf(w, "# HELP parsvd_model_queue_depth Pushes waiting in the ingest queue.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_queue_depth gauge\n")
	fmt.Fprintf(w, "# HELP parsvd_model_comm_bytes Inter-rank traffic bytes per model.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_comm_bytes counter\n")
	fmt.Fprintf(w, "# HELP parsvd_model_pushed_bytes Logical snapshot bytes ingested per model (8*M*B per push, before any sketch compression).\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_pushed_bytes counter\n")
	fmt.Fprintf(w, "# HELP parsvd_model_wire_bytes Bytes that actually crossed the ingress boundary per model (smaller than pushed_bytes when sketched).\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_wire_bytes counter\n")
	fmt.Fprintf(w, "# HELP parsvd_model_sketched_pushes Updates that arrived as compressed sketch factor pairs.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_sketched_pushes counter\n")
	fmt.Fprintf(w, "# HELP parsvd_model_wal_appends Micro-batch records appended to the write-ahead log.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_wal_appends counter\n")
	fmt.Fprintf(w, "# HELP parsvd_model_wal_fsyncs Fsync calls issued by the write-ahead log.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_wal_fsyncs counter\n")
	fmt.Fprintf(w, "# HELP parsvd_model_wal_records Write-ahead log records not yet rotated out by a checkpoint (replay depth).\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_wal_records gauge\n")
	fmt.Fprintf(w, "# HELP parsvd_model_wal_bytes Write-ahead log bytes not yet rotated out by a checkpoint.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_wal_bytes gauge\n")
	fmt.Fprintf(w, "# HELP parsvd_model_wal_replayed_records Records re-applied from the write-ahead log at the last boot.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_wal_replayed_records gauge\n")
	fmt.Fprintf(w, "# HELP parsvd_model_wal_truncated_bytes Torn-tail bytes discarded when the write-ahead log was opened.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_wal_truncated_bytes counter\n")
	fmt.Fprintf(w, "# HELP parsvd_model_recovery_seconds Wall time the last restore of this model took (checkpoint load + replay).\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_recovery_seconds gauge\n")
	fmt.Fprintf(w, "# HELP parsvd_model_dirty_age_seconds Age of the oldest update not yet covered by a checkpoint (0 when clean).\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_dirty_age_seconds gauge\n")
	fmt.Fprintf(w, "# HELP parsvd_model_shard_info Shard provenance: shard is \"i/n\", \"merged\" or \"whole\"; absorbed counts merged-in shard checkpoints. Value is always 1.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_shard_info gauge\n")
	for _, m := range s.reg.list() {
		st := m.statsSnapshot()
		fmt.Fprintf(w, "parsvd_model_snapshots{model=%q} %d\n", m.name, st.Snapshots)
		fmt.Fprintf(w, "parsvd_model_updates{model=%q} %d\n", m.name, st.Updates)
		fmt.Fprintf(w, "parsvd_model_queue_depth{model=%q} %d\n", m.name, m.pending.Load())
		fmt.Fprintf(w, "parsvd_model_comm_bytes{model=%q} %d\n", m.name, st.Bytes)
		fmt.Fprintf(w, "parsvd_model_pushed_bytes{model=%q} %d\n", m.name, st.PushedBytes)
		fmt.Fprintf(w, "parsvd_model_wire_bytes{model=%q} %d\n", m.name, st.WireBytes)
		fmt.Fprintf(w, "parsvd_model_sketched_pushes{model=%q} %d\n", m.name, st.SketchedPushes)
		shard, absorbed := shardLabel(st)
		if shard == "" {
			shard = "whole"
		}
		fmt.Fprintf(w, "parsvd_model_shard_info{model=%q,shard=%q,absorbed=\"%d\"} 1\n", m.name, shard, absorbed)
		h := m.health()
		fmt.Fprintf(w, "parsvd_model_recovery_seconds{model=%q} %g\n", m.name, h.RecoverySeconds)
		fmt.Fprintf(w, "parsvd_model_dirty_age_seconds{model=%q} %g\n", m.name, h.DirtyAgeSeconds)
		wlog := m.wlog.Load()
		if wlog == nil {
			continue
		}
		c := wlog.Counters()
		fmt.Fprintf(w, "parsvd_model_wal_appends{model=%q} %d\n", m.name, c.Appends)
		fmt.Fprintf(w, "parsvd_model_wal_fsyncs{model=%q} %d\n", m.name, c.Fsyncs)
		fmt.Fprintf(w, "parsvd_model_wal_records{model=%q} %d\n", m.name, h.WALRecords)
		fmt.Fprintf(w, "parsvd_model_wal_bytes{model=%q} %d\n", m.name, h.WALBytes)
		fmt.Fprintf(w, "parsvd_model_wal_replayed_records{model=%q} %d\n", m.name, c.Replayed)
		fmt.Fprintf(w, "parsvd_model_wal_truncated_bytes{model=%q} %d\n", m.name, c.TruncatedBytes)
	}
}
