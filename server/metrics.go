package server

import (
	"fmt"
	"net/http"
)

// handleMetrics exposes Prometheus-style plaintext gauges. Everything
// here comes from already-published stats snapshots and queue counters —
// no gather, no engine lock — so scraping stays cheap and contention-free
// under ingest load.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP parsvd_http_requests_total HTTP requests served.\n")
	fmt.Fprintf(w, "# TYPE parsvd_http_requests_total counter\n")
	fmt.Fprintf(w, "parsvd_http_requests_total %d\n", s.requests.Load())
	fmt.Fprintf(w, "# HELP parsvd_models Registered models.\n")
	fmt.Fprintf(w, "# TYPE parsvd_models gauge\n")
	fmt.Fprintf(w, "parsvd_models %d\n", s.reg.count())

	fmt.Fprintf(w, "# HELP parsvd_model_snapshots Snapshot columns ingested per model.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_snapshots counter\n")
	fmt.Fprintf(w, "# HELP parsvd_model_updates Engine updates applied per model.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_updates counter\n")
	fmt.Fprintf(w, "# HELP parsvd_model_queue_depth Pushes waiting in the ingest queue.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_queue_depth gauge\n")
	fmt.Fprintf(w, "# HELP parsvd_model_comm_bytes Inter-rank traffic bytes per model.\n")
	fmt.Fprintf(w, "# TYPE parsvd_model_comm_bytes counter\n")
	for _, m := range s.reg.list() {
		st := m.statsSnapshot()
		fmt.Fprintf(w, "parsvd_model_snapshots{model=%q} %d\n", m.name, st.Snapshots)
		fmt.Fprintf(w, "parsvd_model_updates{model=%q} %d\n", m.name, st.Updates)
		fmt.Fprintf(w, "parsvd_model_queue_depth{model=%q} %d\n", m.name, m.pending.Load())
		fmt.Fprintf(w, "parsvd_model_comm_bytes{model=%q} %d\n", m.name, st.Bytes)
	}
}
