package server

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	parsvd "goparsvd"
	"goparsvd/internal/wal"
)

// model is one registered decomposition: a parsvd.SVD owned by a single
// writer goroutine (the ingest loop), a bounded queue feeding it, and a
// copy-on-publish View for readers.
//
// Concurrency contract: handlers only ever enqueue (bounded, non-blocking)
// and load the current View; every SVD method that mutates or gathers —
// Push, Result, Save, Close — is called from the ingest goroutine alone.
// Readers therefore never contend with the writer and never observe the
// engine's recycled mode storage mid-update.
type model struct {
	name string
	spec ModelSpec
	svd  *parsvd.SVD
	cfg  Config

	queue   chan *pushReq
	pending atomic.Int64 // queue depth gauge for /stats and /metrics
	view    atomic.Pointer[View]
	// base is the Stats snapshot taken at construction; statsSnapshot
	// serves it until the first View exists, so reads never touch the
	// (possibly busy) SVD.
	base parsvd.Stats

	mu     sync.RWMutex // guards closed/flush against concurrent enqueues
	closed bool
	flush  bool // whether finish applies or refuses the queued remainder
	quit   chan struct{}
	done   chan struct{}

	// Ingest-goroutine-only state.
	dirty     bool // updates since the last checkpoint
	ingestErr atomic.Pointer[string]

	// wlog is the model's write-ahead log (nil when durability is off).
	// Stored atomically because startModel attaches it after the model is
	// already visible in the registry, while /healthz and /metrics read
	// its depth concurrently.
	wlog atomic.Pointer[wal.Log]
	// dirtySince is the unix-nano timestamp of the first update since the
	// last checkpoint (0 when clean): the age of the data-at-risk window
	// /healthz reports for operators.
	dirtySince atomic.Int64

	// Boot-time recovery facts, written before run() and read-only after.
	recoverySeconds float64
	replayedOnBoot  uint64
}

// pushReq is one queued ingest operation: a snapshot batch, a compressed
// (Q, S) sketch factor pair — when sketchQ is set — or, when mergeCkpt is
// set, a checkpoint to absorb through SVD.Merge. Sketched pushes and
// merges ride the same single-writer queue as pushes, so the WAL ordering
// and durability barrier apply to them unchanged. errc is buffered so the
// ingest loop can always deliver the outcome, even when the submitting
// handler has already given up (context canceled → 499) and gone away.
type pushReq struct {
	batch            *parsvd.Matrix
	sketchQ, sketchS *parsvd.Matrix
	mergeCkpt        []byte
	errc             chan error
}

// newModel wires a model around an SVD but does not start its ingest
// loop; registry.add → run does. A restored SVD that already holds data
// publishes its initial view here, so reads work before the first push.
func newModel(spec ModelSpec, svd *parsvd.SVD, cfg Config) *model {
	m := &model{
		name:  spec.Name,
		spec:  spec,
		svd:   svd,
		cfg:   cfg,
		queue: make(chan *pushReq, cfg.QueueDepth),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	m.base = svd.Stats()
	if st := m.base; st.Snapshots > 0 {
		if res, err := svd.Result(); err == nil {
			m.view.Store(&View{Version: uint64(st.Updates), Result: res, Stats: st})
		}
	}
	return m
}

// run starts the single-writer ingest loop.
func (m *model) run() { go m.ingestLoop() }

// currentView returns the last published View, or nil before any data.
func (m *model) currentView() *View { return m.view.Load() }

// enqueue hands a push to the ingest loop without blocking: a full queue
// is backpressure (ErrBacklogFull → 429), a closed model is
// ErrModelClosed. The RLock pairs with the exclusive lock in shutdown, so
// no request can slip into the queue after the final drain decided what
// remains.
func (m *model) enqueue(req *pushReq) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrModelClosed
	}
	// Increment before the send so the gauge never dips negative when
	// the ingest loop's decrement races this enqueue.
	m.pending.Add(1)
	select {
	case m.queue <- req:
		return nil
	default:
		m.pending.Add(-1)
		return ErrBacklogFull
	}
}

// retryAfterSeconds derives the Retry-After hint a 429 carries from the
// actual backlog instead of a fixed guess: the queued pushes drain up to
// MaxCoalesce per engine update, so ⌈pending/MaxCoalesce⌉ micro-batches
// must clear before room is guaranteed — roughly that many seconds under
// a loaded model. Clamped to [1, 30] so an empty-queue race still asks
// for a beat and a deep backlog never tells clients to vanish for good.
func (m *model) retryAfterSeconds() int {
	secs := (int(m.pending.Load()) + m.cfg.MaxCoalesce - 1) / m.cfg.MaxCoalesce
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// ingestLoop is the model's single writer: it drains the queue,
// micro-batches whatever is pending into as few engine updates as
// possible, publishes a fresh View after each applied batch, and
// checkpoints on a timer. It exits when shutdown closes quit.
func (m *model) ingestLoop() {
	defer close(m.done)
	var tick <-chan time.Time
	if m.cfg.CheckpointDir != "" && m.cfg.CheckpointInterval > 0 {
		t := time.NewTicker(m.cfg.CheckpointInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-m.quit:
			m.finish()
			return
		case <-tick:
			m.checkpointIfDirty()
		case req := <-m.queue:
			m.pending.Add(-1)
			m.apply(m.coalesce(req))
		}
	}
}

// coalesce gathers everything already waiting in the queue behind first,
// up to MaxCoalesce requests, without blocking. This is the micro-batch:
// one engine update (one blocked-GEMM pass over the stacked columns)
// amortized across every concurrent pusher.
//
// Semantics: a micro-batch is ONE streaming update, so with a forget
// factor < 1 the down-weighting applies once per micro-batch, not once
// per push — exactly as if the clients had agreed to send one stacked
// batch. Queue timing therefore decides batch boundaries under load;
// deployments that need strictly per-push update semantics set
// MaxCoalesce to 1 (Config docs, `parsvd-serve -coalesce 1`).
func (m *model) coalesce(first *pushReq) []*pushReq {
	reqs := []*pushReq{first}
	// A merge or sketched push never coalesces with anything: each is one
	// engine operation with its own WAL record, applied exactly at its
	// queue position. (Stacking reconstructed sketches with raw batches
	// would force the reconstruction onto the ingest loop and log the
	// expanded rows, forfeiting the compression the sender paid for.)
	if first.mergeCkpt != nil || first.sketchQ != nil {
		return reqs
	}
	for len(reqs) < m.cfg.MaxCoalesce {
		select {
		case r := <-m.queue:
			m.pending.Add(-1)
			reqs = append(reqs, r)
			if r.mergeCkpt != nil || r.sketchQ != nil {
				// The merge or sketch ends the micro-batch; apply handles
				// it as its own run after the batches queued ahead of it.
				return reqs
			}
		default:
			return reqs
		}
	}
	return reqs
}

// apply stacks queued batches into engine updates and fans the outcome
// back to each submitter. Consecutive requests with equal row counts form
// one run and are HStacked into a single Push — arrival order is
// preserved, which is what makes N coalesced single-snapshot pushes
// bit-identical to one stacked push. A run with a mismatched row count
// (only possible before the first batch pins M, or from a caller bug)
// simply starts its own run and lets Push report the dimension error.
func (m *model) apply(reqs []*pushReq) {
	for start := 0; start < len(reqs); {
		if reqs[start].mergeCkpt != nil {
			m.applyMerge(reqs[start])
			start++
			continue
		}
		if reqs[start].sketchQ != nil {
			m.applySketch(reqs[start])
			start++
			continue
		}
		end := start + 1
		rows := reqs[start].batch.Rows()
		for end < len(reqs) && reqs[end].mergeCkpt == nil && reqs[end].sketchQ == nil && reqs[end].batch.Rows() == rows {
			end++
		}
		run := reqs[start:end]
		stacked := run[0].batch
		if len(run) > 1 {
			batches := make([]*parsvd.Matrix, len(run))
			for i, r := range run {
				batches[i] = r.batch
			}
			stacked = parsvd.HStack(batches...)
		}
		err := m.svd.Push(stacked)
		if err == nil {
			// Durability barrier: the applied micro-batch is logged (and,
			// under FsyncAlways, fsynced) before any pusher sees its 200.
			// The stacked batch is recorded exactly as the engine consumed
			// it, so replay reproduces the same micro-batch boundaries —
			// and with them the same forget-factor weighting — bit for bit.
			err = m.logDurable(encodeBatchPayload(stacked))
		}
		if err == nil {
			// A publish failure (poisoned parallel world during the
			// gather) counts against the pushers too: their data is in an
			// engine that can no longer serve it.
			err = m.publish()
		} else {
			// Record the fault so /stats and listings show a dead or
			// misfed model, not just a stream of failed pushes.
			msg := err.Error()
			m.ingestErr.Store(&msg)
		}
		for _, r := range run {
			r.errc <- err
		}
		start = end
	}
}

// applyMerge absorbs a checkpoint into the model through SVD.Merge,
// with the same durability barrier as a push: the merge record (the
// absorbed checkpoint, verbatim) is in the WAL before the caller sees
// its ack, so a crash at any point recovers to exactly the pre-merge
// state (record not yet durable: replay stops before it) or the
// post-merge state (record durable: replay re-applies it) — never a
// partial merge. Merge itself validates the checkpoint fully before
// touching the engine, so a corrupt upload is a clean refusal that
// leaves the model serving.
func (m *model) applyMerge(req *pushReq) {
	err := m.svd.Merge(bytes.NewReader(req.mergeCkpt))
	if err == nil {
		err = m.logDurable(encodeMergePayload(req.mergeCkpt))
	}
	if err == nil {
		err = m.publish()
	} else if !isValidationError(err) {
		// Only record engine/durability faults in the model health: a
		// refused (incompatible or corrupt) checkpoint leaves the model
		// fully healthy.
		msg := err.Error()
		m.ingestErr.Store(&msg)
	}
	req.errc <- err
}

// applySketch ingests one compressed (Q, S) factor pair through
// SVD.PushSketch, under the same durability barrier as a push: the WAL
// record carries the pair in its compressed form (the reconstruction is
// deterministic, so replay is bit-exact) and is durable before the
// sender sees its ack.
func (m *model) applySketch(req *pushReq) {
	err := m.svd.PushSketch(req.sketchQ, req.sketchS)
	if err == nil {
		err = m.logDurable(encodeSketchPayload(req.sketchQ, req.sketchS))
	}
	if err == nil {
		err = m.publish()
	} else {
		msg := err.Error()
		m.ingestErr.Store(&msg)
	}
	req.errc <- err
}

// isValidationError recognizes merge refusals that leave the model
// untouched, as opposed to faults of the model itself.
func isValidationError(err error) bool {
	return errors.Is(err, parsvd.ErrBadCheckpoint) ||
		errors.Is(err, parsvd.ErrMergeIncompatible) ||
		errors.Is(err, parsvd.ErrShardOverlap)
}

// logDurable appends an applied ingest record (a framed micro-batch or
// merge payload) to the write-ahead log, keyed by the engine's
// post-apply Updates counter — the same counter a checkpoint carries,
// which is what lets replay-on-boot skip records a checkpoint already
// covers. Under FsyncAlways the record is on stable storage when this
// returns; under lazier policies the append is buffered and the ack's
// meaning weakens accordingly (Config docs).
//
// A failed append leaves the engine ahead of the log, so the pushers of
// this micro-batch get ErrNotDurable instead of an ack, and — because
// the log refuses non-contiguous sequence numbers — every later push
// fails the same way rather than silently widening the divergence: the
// model is effectively read-only until the operator fixes the disk.
func (m *model) logDurable(payload []byte) error {
	wlog := m.wlog.Load()
	if wlog == nil {
		return nil
	}
	seq := uint64(m.svd.Stats().Updates)
	if err := wlog.Append(seq, payload); err != nil {
		return fmt.Errorf("%w: %v", ErrNotDurable, err)
	}
	return nil
}

// publish deep-copies the decomposition into a fresh View and swaps it in
// (copy-on-publish). Readers holding the previous View keep it; new
// readers see this one. A failed gather (poisoned parallel world) keeps
// the last good View, records the fault for /stats and reports it.
func (m *model) publish() error {
	res, err := m.svd.Result()
	if err != nil {
		msg := err.Error()
		m.ingestErr.Store(&msg)
		m.cfg.Logf("parsvd-serve: model %s: publishing view: %v", m.name, err)
		return err
	}
	st := m.svd.Stats()
	m.view.Store(&View{Version: uint64(st.Updates), Result: res, Stats: st})
	m.dirty = true
	m.dirtySince.CompareAndSwap(0, time.Now().UnixNano())
	m.ingestErr.Store(nil) // healthy again: the last fault is history
	return nil
}

// statsSnapshot serves Stats without touching the SVD: the last published
// View's snapshot, or the construction-time baseline before any view.
// This keeps /stats, /metrics and model listings contention-free even
// while the ingest loop holds the facade lock through a large update.
func (m *model) statsSnapshot() parsvd.Stats {
	if v := m.currentView(); v != nil {
		return v.Stats
	}
	return m.base
}

// checkpointPath is where this model persists (and is restored from).
func (m *model) checkpointPath() string {
	return filepath.Join(m.cfg.CheckpointDir, m.name+".ckpt")
}

// checkpointIfDirty saves the streaming state if it changed since the
// last save. Runs on the ingest goroutine, so it never races a Push; the
// write-then-rename keeps restore-on-boot from ever seeing a torn file.
func (m *model) checkpointIfDirty() {
	if !m.dirty || m.cfg.CheckpointDir == "" {
		return
	}
	if err := m.checkpoint(); err != nil {
		m.cfg.Logf("parsvd-serve: model %s: checkpoint: %v", m.name, err)
		return
	}
	m.dirty = false
	m.dirtySince.Store(0)
	// The checkpoint is the WAL's truncation barrier: every record at or
	// below its Updates counter is now redundant, so the covered segments
	// rotate out — bounding both recovery time and disk.
	if wlog := m.wlog.Load(); wlog != nil {
		if err := wlog.Rotate(uint64(m.svd.Stats().Updates)); err != nil {
			m.cfg.Logf("parsvd-serve: model %s: rotating wal: %v", m.name, err)
		}
	}
}

func (m *model) checkpoint() error {
	path := m.checkpointPath()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := m.svd.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// fsync before the rename: a checkpoint that becomes the WAL's
	// truncation barrier must itself be on stable storage before the
	// covered records rotate out.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(m.cfg.CheckpointDir)
	return nil
}

// finish is the quit path of the ingest loop: by the time it runs,
// shutdown has set closed under the exclusive lock, so the queue can no
// longer grow. Whatever is still queued is flushed (or refused), a final
// checkpoint is written, and the SVD is closed.
func (m *model) finish() {
	var rest []*pushReq
	for {
		select {
		case req := <-m.queue:
			m.pending.Add(-1)
			rest = append(rest, req)
			continue
		default:
		}
		break
	}
	if len(rest) > 0 {
		if m.flushOnQuit() {
			m.apply(rest)
		} else {
			for _, r := range rest {
				r.errc <- ErrModelClosed
			}
		}
	}
	if m.flushOnQuit() {
		m.checkpointIfDirty()
	}
	if wlog := m.wlog.Load(); wlog != nil {
		if err := wlog.Close(); err != nil {
			m.cfg.Logf("parsvd-serve: model %s: closing wal: %v", m.name, err)
		}
	}
	if err := m.svd.Close(); err != nil {
		m.cfg.Logf("parsvd-serve: model %s: closing engine: %v", m.name, err)
	}
}

// shutdown stops the model. flush decides the fate of queued pushes:
// graceful server shutdown applies them and writes a final checkpoint;
// model deletion refuses them. Idempotent; returns once the ingest loop
// has exited.
func (m *model) shutdown(flush bool) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.done
		return
	}
	m.closed = true
	m.flush = flush
	m.mu.Unlock()
	close(m.quit)
	<-m.done
}

func (m *model) flushOnQuit() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.flush
}

// lastIngestError returns the most recent view-publish fault, "" if none.
func (m *model) lastIngestError() string {
	if p := m.ingestErr.Load(); p != nil {
		return *p
	}
	return ""
}

// health assembles the durability snapshot /healthz reports: how old the
// un-checkpointed state is (the data-at-risk window for checkpoint-only
// deployments) and how deep the WAL is (the replay work — and, under lazy
// fsync policies, the exposure — a crash right now would incur).
func (m *model) health() ModelHealth {
	h := ModelHealth{
		Name:            m.name,
		ReplayedOnBoot:  m.replayedOnBoot,
		RecoverySeconds: m.recoverySeconds,
	}
	h.Shard, h.Absorbed = shardLabel(m.statsSnapshot())
	if since := m.dirtySince.Load(); since != 0 {
		h.Dirty = true
		h.DirtyAgeSeconds = time.Since(time.Unix(0, since)).Seconds()
	}
	if wlog := m.wlog.Load(); wlog != nil {
		h.WAL = true
		h.WALRecords, h.WALBytes = wlog.Depth()
	}
	return h
}

// shardLabel condenses a model's provenance for /healthz and /metrics:
// "i/n" for a shard-local fit, "merged" once other shards have been
// absorbed, "" for a plain whole-stream model. Absorbed is the size of
// the absorbed set either way.
func shardLabel(st parsvd.Stats) (string, int) {
	switch {
	case !st.Shard.IsZero():
		return st.Shard.String(), st.Absorbed
	case st.Absorbed > 0:
		return "merged", st.Absorbed
	default:
		return "", 0
	}
}

// info assembles the API representation of the model.
func (m *model) info() ModelInfo {
	st := m.statsSnapshot()
	var version uint64
	if v := m.currentView(); v != nil {
		version = v.Version
	}
	return ModelInfo{
		Spec:       m.spec,
		Stats:      statsJSON(st),
		Version:    version,
		QueueDepth: int(m.pending.Load()),
		IngestErr:  m.lastIngestError(),
	}
}
