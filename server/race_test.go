package server

import (
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
)

// TestRacePushersAndReaders hammers Push + Result.Clone through the view
// layer: concurrent pushers feed one model while readers grab whatever
// View is current, clone its Result and scribble on the clone. Run under
// -race (make race, make serve-smoke in CI) this proves that no reader
// ever observes — let alone shares — the engine's recycled mode storage,
// and that Clone really severs all aliasing.
func TestRacePushersAndReaders(t *testing.T) {
	s, err := New(Config{QueueDepth: 256, MaxCoalesce: 8, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateModel(ModelSpec{Name: "race", Modes: 4, ForgetFactor: 0.95}); err != nil {
		t.Fatal(err)
	}
	m, err := s.reg.get("race")
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	const (
		rows       = 48
		pushers    = 4
		perPusher  = 25
		memReaders = 3
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Pushers: single-column batches through the ingest queue, retrying
	// on backpressure.
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPusher; i++ {
				req := &pushReq{batch: detMatrix(rows, 1, float64(p*1000+i)), errc: make(chan error, 1)}
				for m.enqueue(req) != nil {
					runtime.Gosched()
				}
				if err := <-req.errc; err != nil {
					t.Errorf("pusher %d push %d: %v", p, i, err)
					return
				}
			}
		}(p)
	}

	// Memory readers: view → Clone → mutate the clone, read the original.
	var readers sync.WaitGroup
	for r := 0; r < memReaders; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := m.currentView()
				if v == nil {
					runtime.Gosched()
					continue
				}
				mine := v.Result.Clone()
				// Scribbling on the clone must be invisible everywhere else.
				mine.Modes.Set(0, 0, mine.Modes.At(0, 0)+1)
				mine.Singular[0]++
				// And reading the shared view must be stable.
				_ = v.Result.Modes.At(rows-1, 0)
				_ = v.Result.Singular[len(v.Result.Singular)-1]
				if mine.Snapshots != v.Result.Snapshots {
					t.Error("clone diverged from its source view")
					return
				}
			}
		}()
	}

	// One HTTP reader polling spectrum + stats, as a real client would.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/models/race/spectrum", nil))
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/models/race/stats", nil))
		}
	}()

	wg.Wait()
	close(stop)
	readers.Wait()

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	v := m.currentView()
	if v == nil || v.Stats.Snapshots != pushers*perPusher {
		t.Fatalf("final view %+v, want %d snapshots", v, pushers*perPusher)
	}
}
