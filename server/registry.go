package server

import (
	"sort"
	"sync"
)

// registry is the set of live models, keyed by name. It only guards the
// map: each model carries its own ingest concurrency.
type registry struct {
	mu     sync.RWMutex
	models map[string]*model
}

func newRegistry() *registry {
	return &registry{models: make(map[string]*model)}
}

// add registers a model that is not yet running. The caller starts it
// (m.run) on success; on ErrModelExists the caller owns cleanup.
func (r *registry) add(m *model) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[m.name]; ok {
		return ErrModelExists
	}
	r.models[m.name] = m
	return nil
}

func (r *registry) get(name string) (*model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	if !ok {
		return nil, ErrModelNotFound
	}
	return m, nil
}

// remove unregisters and returns the model; the caller shuts it down
// outside the registry lock so a slow drain never blocks lookups.
func (r *registry) remove(name string) (*model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.models[name]
	if !ok {
		return nil, ErrModelNotFound
	}
	delete(r.models, name)
	return m, nil
}

// list returns the models sorted by name for stable API output.
func (r *registry) list() []*model {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*model, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (r *registry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}
