// Package server turns the parsvd facade into a long-running
// SVD-as-a-service: a registry of named streaming decompositions behind
// an HTTP JSON API, with micro-batched ingest, snapshot-isolated reads
// and per-model checkpoint persistence.
//
// Architecture, per model:
//
//	HTTP pushers ──► bounded queue ──► single-writer ingest loop ──► parsvd.SVD
//	                     (429 when full)   (coalesces queued pushes        │
//	                                        into one stacked Push)         ▼
//	HTTP readers ◄──────────── atomic View pointer ◄──────────── copy-on-publish
//
// Writers never block readers and readers never block writers: every
// applied micro-batch publishes a fresh deep-copied View (spectrum +
// modes + stats), and queries serve whatever View is current. The PR 1
// engines recycle their mode storage between updates, which is exactly
// why reads go through Views and never through the live engine.
package server

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	parsvd "goparsvd"
	"goparsvd/internal/wal"
)

// Config tunes a Server. The zero value is serviceable: 64-deep queues,
// 16-way coalescing, 32 MiB bodies, no persistence.
type Config struct {
	// QueueDepth bounds each model's ingest queue; a full queue rejects
	// pushes with 429 (backpressure) instead of buffering without bound.
	// Default 64.
	QueueDepth int
	// MaxCoalesce caps how many queued pushes the ingest loop folds into
	// one engine update. Default 16. Each micro-batch is one streaming
	// update, so with a forget factor < 1 the down-weighting applies per
	// micro-batch (queue timing decides the boundaries); set 1 to force
	// strictly per-push updates at the cost of coalescing throughput.
	MaxCoalesce int
	// CheckpointDir, when set, enables persistence: every model
	// periodically saves to <dir>/<name>.ckpt, its creation spec is
	// written durably to <dir>/<name>.spec.json, applied micro-batches
	// are logged to <dir>/<name>.wal/ before they are acked, and every
	// model found at construction (checkpoint, spec or WAL) is restored
	// as a live model — replaying the WAL on top of the newest
	// checkpoint, so no acked push is lost. The directory is created if
	// missing.
	CheckpointDir string
	// CheckpointInterval is the save cadence. Default 30s. Every
	// successful checkpoint truncates the model's WAL (the records it
	// covers rotate out), so the interval also bounds recovery time and
	// WAL disk.
	CheckpointInterval time.Duration
	// Fsync is the WAL durability policy: FsyncAlways (the default — an
	// acked push survives kill -9 and power loss), FsyncInterval (acked
	// pushes survive a process crash; up to FsyncInterval of them can be
	// lost to a machine failure) or FsyncNever (the OS page cache
	// decides). See the FsyncPolicy docs for what a 200 means under each.
	Fsync FsyncPolicy
	// FsyncInterval is the background flush cadence under FsyncInterval.
	// Default 100ms.
	FsyncInterval time.Duration
	// DisableWAL turns the write-ahead log off, reverting to
	// checkpoint-only persistence: every acked push since the last
	// periodic checkpoint is lost on a crash. /healthz reports that
	// exposure as the per-model dirty age.
	DisableWAL bool
	// MaxBodyBytes bounds request bodies (413 beyond). Default 32 MiB.
	MaxBodyBytes int64
	// Logf receives operational log lines. Default log.Printf.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxCoalesce <= 0 {
		c.MaxCoalesce = 16
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 30 * time.Second
	}
	if c.Fsync == "" {
		c.Fsync = FsyncAlways
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Server hosts the model registry and the HTTP API. Construct with New,
// mount Handler on an http.Server, and Close on the way out (after the
// HTTP listener has drained) to flush queues and write final checkpoints.
type Server struct {
	cfg Config
	reg *registry
	mux *http.ServeMux

	requests atomic.Int64 // total HTTP requests, for /metrics

	// stateMu orders model creation against Close: startModel holds the
	// read side across the closed-check + registry add, so once Close has
	// set closed under the write side, no new ingest loop can slip in
	// after the final drain.
	stateMu sync.RWMutex
	closed  bool
}

// New builds a Server and, when cfg.CheckpointDir is set, restores every
// persisted model in it (restore-on-boot): the newest checkpoint is
// loaded, then the model's write-ahead log is replayed on top, so every
// acked push survives a crash (under FsyncAlways; see FsyncPolicy for the
// lazier trade-offs).
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if _, err := cfg.Fsync.syncPolicy(); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, reg: newRegistry(), mux: http.NewServeMux()}
	s.routes()
	if cfg.CheckpointDir != "" {
		if err := s.restore(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// walEnabled reports whether models get a write-ahead log.
func (s *Server) walEnabled() bool {
	return s.cfg.CheckpointDir != "" && !s.cfg.DisableWAL
}

// CreateModel registers and starts a model from a spec: the programmatic
// twin of POST /v1/models, used by the HTTP handler and embedding callers
// alike. With persistence on, the spec is written durably and the model's
// write-ahead log is opened before the create returns, so the model —
// including one that crashes before its first checkpoint — survives a
// reboot.
func (s *Server) CreateModel(spec ModelSpec) (ModelInfo, error) {
	opts, err := spec.options()
	if err != nil {
		return ModelInfo{}, err
	}
	svd, err := parsvd.New(opts...)
	if err != nil {
		return ModelInfo{}, err
	}
	return s.startModel(newModel(spec, svd, s.cfg), true)
}

// startModel mounts a model (fresh or restored) into the registry and
// starts its ingest loop. persist asks for the durability files (spec +
// WAL) to be created; restore-on-boot passes false, having already opened
// them and attached the WAL to the model.
func (s *Server) startModel(m *model, persist bool) (ModelInfo, error) {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.closed {
		m.release()
		return ModelInfo{}, ErrServerClosed
	}
	if err := s.reg.add(m); err != nil {
		m.release()
		return ModelInfo{}, err
	}
	// The registry add reserved the name, so the spec file and WAL
	// directory are exclusively ours — a concurrent create of the same
	// name lost above and cannot clobber them.
	if persist && s.cfg.CheckpointDir != "" {
		if err := s.initDurability(m); err != nil {
			s.reg.remove(m.name)
			m.release()
			return ModelInfo{}, err
		}
	}
	m.run()
	return m.info(), nil
}

// initDurability writes the creation spec durably and opens the model's
// write-ahead log (unless WAL is disabled).
func (s *Server) initDurability(m *model) error {
	if err := writeSpecFile(s.cfg.CheckpointDir, m.spec); err != nil {
		return err
	}
	if !s.walEnabled() {
		return nil
	}
	wlog, err := openModelWAL(s.cfg, m.name)
	if err != nil {
		os.Remove(specFilePath(s.cfg.CheckpointDir, m.name))
		return err
	}
	m.wlog.Store(wlog)
	return nil
}

// release frees the resources of a model that never started.
func (m *model) release() {
	if wlog := m.wlog.Load(); wlog != nil {
		wlog.Close()
	}
	m.svd.Close()
}

// restore brings every persisted model in CheckpointDir back to life:
// the newest checkpoint (when present) is the base, the write-ahead log
// is replayed on top of it — the checkpoint's Updates counter is the
// replay cursor, records at or below it are skipped — and a model with a
// spec but no checkpoint yet is rebuilt from scratch and re-fed from the
// log (a distributed model's replay re-spawns and re-feeds its worker
// fleet). Torn WAL tails were already truncated by the open; they never
// fail boot. Unrepairable damage — a corrupt checkpoint with no full
// log to rebuild from, mid-log corruption, a sequence gap — quarantines
// that one model (everything renamed .bad, like .ckpt.bad always worked)
// instead of taking the whole server down.
func (s *Server) restore() error {
	dir := s.cfg.CheckpointDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: checkpoint dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("server: checkpoint dir: %w", err)
	}
	names := make(map[string]bool)
	note := func(raw, suffix string) {
		name := strings.TrimSuffix(raw, suffix)
		if !validName(name) {
			s.cfg.Logf("parsvd-serve: skipping persisted state with invalid model name %q", raw)
			return
		}
		names[name] = true
	}
	for _, e := range entries {
		switch {
		case e.IsDir() && strings.HasSuffix(e.Name(), ".wal"):
			note(e.Name(), ".wal")
		case !e.IsDir() && strings.HasSuffix(e.Name(), ".ckpt"):
			note(e.Name(), ".ckpt")
		case !e.IsDir() && strings.HasSuffix(e.Name(), ".spec.json"):
			note(e.Name(), ".spec.json")
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		if err := s.restoreModel(name); err != nil {
			return err
		}
	}
	return nil
}

// restoreModel recovers one model. Only infrastructure failures (the
// registry refusing the add) are returned; damaged state quarantines the
// model and reports nil so the other models still boot.
func (s *Server) restoreModel(name string) error {
	dir := s.cfg.CheckpointDir
	start := time.Now()
	ckptPath := filepath.Join(dir, name+".ckpt")

	quarantineModel := func(reason string, err error) {
		s.cfg.Logf("parsvd-serve: SKIPPING model %s: %s: %v", name, reason, err)
		quarantine(s.cfg.Logf, ckptPath)
		quarantine(s.cfg.Logf, specFilePath(dir, name))
		quarantine(s.cfg.Logf, walDirPath(dir, name))
	}

	spec, specErr := readSpecFile(dir, name)
	haveSpec := specErr == nil
	if specErr != nil && !errors.Is(specErr, fs.ErrNotExist) {
		quarantineModel("unreadable spec", specErr)
		return nil
	}

	// The newest checkpoint is the replay base. An unrestorable one is
	// quarantined; when the WAL still reaches back to the first record
	// the model is rebuilt from its spec and fully re-fed below —
	// otherwise the replay's contiguity anchor reports the gap and the
	// rest of the model is quarantined too.
	var svd *parsvd.SVD
	if _, err := os.Stat(ckptPath); err == nil {
		svd, err = loadCheckpoint(ckptPath)
		if err != nil {
			s.cfg.Logf("parsvd-serve: SKIPPING unrestorable checkpoint %s: %v", ckptPath, err)
			quarantine(s.cfg.Logf, ckptPath)
			svd = nil
		}
	}
	switch {
	case svd != nil:
		// Checkpoints always resume on the serial backend (parsvd.Load
		// semantics); the spec echoes the configuration actually serving.
		spec = specFromConfiguration(name, svd.Configuration())
	case haveSpec:
		opts, err := spec.options()
		if err == nil {
			svd, err = parsvd.New(opts...)
		}
		if err != nil {
			quarantineModel("rebuilding from spec", err)
			return nil
		}
	default:
		quarantineModel("no checkpoint or spec to restore from", errors.New("orphaned state"))
		return nil
	}

	u0 := uint64(svd.Stats().Updates)
	var wlog *wal.Log
	var replayed uint64
	if s.walEnabled() {
		var err error
		wlog, err = openModelWAL(s.cfg, name)
		if err != nil {
			svd.Close()
			quarantineModel("write-ahead log unrecoverable", err)
			return nil
		}
		expected := u0
		replayErr := wlog.Replay(u0, func(seq uint64, payload []byte) error {
			if seq != expected+1 {
				return fmt.Errorf("wal resumes at seq %d but the checkpoint covers through %d (gap)", seq, expected)
			}
			expected = seq
			// A merge record replays through Merge (re-absorbing the
			// logged checkpoint), a sketch record through PushSketch (the
			// compressed pair reconstructs deterministically, so replay is
			// bit-exact), a batch record through Push — the same
			// operations, in the same order, as the original ingest.
			if isMergePayload(payload) {
				return svd.Merge(bytes.NewReader(mergeCheckpoint(payload)))
			}
			if isSketchPayload(payload) {
				q, sk, err := decodeSketchPayload(payload)
				if err != nil {
					return err
				}
				return svd.PushSketch(q, sk)
			}
			batch, err := decodeBatchPayload(payload)
			if err != nil {
				return err
			}
			return svd.Push(batch)
		})
		if replayErr != nil {
			wlog.Close()
			svd.Close()
			quarantineModel("replaying write-ahead log", replayErr)
			return nil
		}
		replayed = wlog.Counters().Replayed
	}

	m := newModel(spec, svd, s.cfg)
	if wlog != nil {
		m.wlog.Store(wlog)
	}
	m.replayedOnBoot = replayed
	m.recoverySeconds = time.Since(start).Seconds()
	if _, err := s.startModel(m, false); err != nil {
		return fmt.Errorf("server: restoring %s: %w", name, err)
	}
	st := svd.Stats()
	s.cfg.Logf("parsvd-serve: restored model %s (K=%d, %d snapshots, %d wal records replayed, %.3fs)",
		name, st.K, st.Snapshots, replayed, m.recoverySeconds)
	return nil
}

func loadCheckpoint(path string) (*parsvd.SVD, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parsvd.Load(f)
}

// specFromConfiguration rebuilds the API spec of a restored model from
// the facade's configuration echo, so GET /v1/models keeps reporting the
// forget factor, init rank and randomization settings across restarts.
func specFromConfiguration(name string, c parsvd.Configuration) ModelSpec {
	spec := ModelSpec{
		Name:         name,
		Modes:        c.Modes,
		ForgetFactor: c.ForgetFactor,
		Backend:      c.Backend.String(),
		InitRank:     c.InitRank,
	}
	if c.LowRank {
		spec.LowRank = &LowRankSpec{
			Oversample: c.RLA.Oversample,
			PowerIters: c.RLA.PowerIters,
			Seed:       c.RLA.Seed,
		}
	}
	if !c.Shard.IsZero() {
		spec.Shard = &ShardSpec{Index: c.Shard.Index, Count: c.Shard.Count}
	}
	return spec
}

// deleteModel unregisters a model, refuses its queued pushes and removes
// its persisted state (checkpoint, spec, write-ahead log) so it does not
// resurrect on the next boot.
func (s *Server) deleteModel(name string) error {
	m, err := s.reg.remove(name)
	if err != nil {
		return err
	}
	m.shutdown(false)
	if s.cfg.CheckpointDir != "" {
		remove := func(what string, rm func() error) {
			if err := rm(); err != nil && !os.IsNotExist(err) {
				s.cfg.Logf("parsvd-serve: removing %s of deleted model %s: %v", what, name, err)
			}
		}
		remove("checkpoint", func() error { return os.Remove(m.checkpointPath()) })
		remove("spec", func() error { return os.Remove(specFilePath(s.cfg.CheckpointDir, name)) })
		remove("wal", func() error { return os.RemoveAll(walDirPath(s.cfg.CheckpointDir, name)) })
	}
	return nil
}

// Handler returns the HTTP API. Mount it on any http.Server; the handler
// enforces MaxBodyBytes and counts requests for /metrics.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Close is the graceful shutdown: every model drains and applies its
// queued pushes, writes a final checkpoint (when persistence is on) and
// releases its engine. Call it after the HTTP listener has stopped
// accepting, so in-flight handlers have delivered their pushes to the
// queues being flushed. Idempotent; model creation after (or racing)
// Close is refused with ErrServerClosed, so no ingest loop outlives it.
func (s *Server) Close() error {
	s.stateMu.Lock()
	if s.closed {
		s.stateMu.Unlock()
		return nil
	}
	s.closed = true
	s.stateMu.Unlock()
	var wg sync.WaitGroup
	for _, m := range s.reg.list() {
		wg.Add(1)
		go func(m *model) {
			defer wg.Done()
			m.shutdown(true)
		}(m)
	}
	wg.Wait()
	return nil
}
