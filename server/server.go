// Package server turns the parsvd facade into a long-running
// SVD-as-a-service: a registry of named streaming decompositions behind
// an HTTP JSON API, with micro-batched ingest, snapshot-isolated reads
// and per-model checkpoint persistence.
//
// Architecture, per model:
//
//	HTTP pushers ──► bounded queue ──► single-writer ingest loop ──► parsvd.SVD
//	                     (429 when full)   (coalesces queued pushes        │
//	                                        into one stacked Push)         ▼
//	HTTP readers ◄──────────── atomic View pointer ◄──────────── copy-on-publish
//
// Writers never block readers and readers never block writers: every
// applied micro-batch publishes a fresh deep-copied View (spectrum +
// modes + stats), and queries serve whatever View is current. The PR 1
// engines recycle their mode storage between updates, which is exactly
// why reads go through Views and never through the live engine.
package server

import (
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	parsvd "goparsvd"
)

// Config tunes a Server. The zero value is serviceable: 64-deep queues,
// 16-way coalescing, 32 MiB bodies, no persistence.
type Config struct {
	// QueueDepth bounds each model's ingest queue; a full queue rejects
	// pushes with 429 (backpressure) instead of buffering without bound.
	// Default 64.
	QueueDepth int
	// MaxCoalesce caps how many queued pushes the ingest loop folds into
	// one engine update. Default 16. Each micro-batch is one streaming
	// update, so with a forget factor < 1 the down-weighting applies per
	// micro-batch (queue timing decides the boundaries); set 1 to force
	// strictly per-push updates at the cost of coalescing throughput.
	MaxCoalesce int
	// CheckpointDir, when set, enables persistence: every model
	// periodically saves to <dir>/<name>.ckpt and every *.ckpt found at
	// construction is restored as a live model. The directory is created
	// if missing.
	CheckpointDir string
	// CheckpointInterval is the save cadence. Default 30s.
	CheckpointInterval time.Duration
	// MaxBodyBytes bounds request bodies (413 beyond). Default 32 MiB.
	MaxBodyBytes int64
	// Logf receives operational log lines. Default log.Printf.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxCoalesce <= 0 {
		c.MaxCoalesce = 16
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Server hosts the model registry and the HTTP API. Construct with New,
// mount Handler on an http.Server, and Close on the way out (after the
// HTTP listener has drained) to flush queues and write final checkpoints.
type Server struct {
	cfg Config
	reg *registry
	mux *http.ServeMux

	requests atomic.Int64 // total HTTP requests, for /metrics

	// stateMu orders model creation against Close: startModel holds the
	// read side across the closed-check + registry add, so once Close has
	// set closed under the write side, no new ingest loop can slip in
	// after the final drain.
	stateMu sync.RWMutex
	closed  bool
}

// New builds a Server and, when cfg.CheckpointDir is set, restores every
// checkpoint in it as a live model (restore-on-boot).
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	s := &Server{cfg: cfg, reg: newRegistry(), mux: http.NewServeMux()}
	s.routes()
	if cfg.CheckpointDir != "" {
		if err := s.restore(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// CreateModel registers and starts a model from a spec: the programmatic
// twin of POST /v1/models, used by the HTTP handler, restore-on-boot and
// embedding callers alike.
func (s *Server) CreateModel(spec ModelSpec) (ModelInfo, error) {
	opts, err := spec.options()
	if err != nil {
		return ModelInfo{}, err
	}
	svd, err := parsvd.New(opts...)
	if err != nil {
		return ModelInfo{}, err
	}
	return s.startModel(spec, svd)
}

// startModel mounts a ready SVD (fresh or restored) into the registry.
func (s *Server) startModel(spec ModelSpec, svd *parsvd.SVD) (ModelInfo, error) {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.closed {
		svd.Close()
		return ModelInfo{}, ErrServerClosed
	}
	m := newModel(spec, svd, s.cfg)
	if err := s.reg.add(m); err != nil {
		svd.Close()
		return ModelInfo{}, err
	}
	m.run()
	return m.info(), nil
}

// restore loads every <name>.ckpt in CheckpointDir into a live model.
// Checkpoints always resume on the serial backend (parsvd.Load semantics);
// the restored spec echoes the full configuration the checkpoint carries.
// One unreadable or corrupt checkpoint must not take down every healthy
// model: it is quarantined (renamed to .ckpt.bad, out of the checkpoint
// namespace) and skipped with a loud log line instead of failing boot.
func (s *Server) restore() error {
	dir := s.cfg.CheckpointDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: checkpoint dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("server: checkpoint dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".ckpt")
		if !validName(name) {
			s.cfg.Logf("parsvd-serve: skipping checkpoint with invalid model name %q", e.Name())
			continue
		}
		path := filepath.Join(dir, e.Name())
		svd, err := loadCheckpoint(path)
		if err != nil {
			s.cfg.Logf("parsvd-serve: SKIPPING unrestorable checkpoint %s: %v", path, err)
			if renameErr := os.Rename(path, path+".bad"); renameErr == nil {
				s.cfg.Logf("parsvd-serve: quarantined %s as %s.bad", path, path)
			}
			continue
		}
		spec := specFromConfiguration(name, svd.Configuration())
		if _, err := s.startModel(spec, svd); err != nil {
			svd.Close()
			return fmt.Errorf("server: restoring %s: %w", path, err)
		}
		st := svd.Stats()
		s.cfg.Logf("parsvd-serve: restored model %s (K=%d, %d snapshots)", name, st.K, st.Snapshots)
	}
	return nil
}

func loadCheckpoint(path string) (*parsvd.SVD, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parsvd.Load(f)
}

// specFromConfiguration rebuilds the API spec of a restored model from
// the facade's configuration echo, so GET /v1/models keeps reporting the
// forget factor, init rank and randomization settings across restarts.
func specFromConfiguration(name string, c parsvd.Configuration) ModelSpec {
	spec := ModelSpec{
		Name:         name,
		Modes:        c.Modes,
		ForgetFactor: c.ForgetFactor,
		Backend:      c.Backend.String(),
		InitRank:     c.InitRank,
	}
	if c.LowRank {
		spec.LowRank = &LowRankSpec{
			Oversample: c.RLA.Oversample,
			PowerIters: c.RLA.PowerIters,
			Seed:       c.RLA.Seed,
		}
	}
	return spec
}

// deleteModel unregisters a model, refuses its queued pushes and removes
// its checkpoint so it does not resurrect on the next boot.
func (s *Server) deleteModel(name string) error {
	m, err := s.reg.remove(name)
	if err != nil {
		return err
	}
	m.shutdown(false)
	if s.cfg.CheckpointDir != "" {
		if err := os.Remove(m.checkpointPath()); err != nil && !os.IsNotExist(err) {
			s.cfg.Logf("parsvd-serve: removing checkpoint of deleted model %s: %v", name, err)
		}
	}
	return nil
}

// Handler returns the HTTP API. Mount it on any http.Server; the handler
// enforces MaxBodyBytes and counts requests for /metrics.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Close is the graceful shutdown: every model drains and applies its
// queued pushes, writes a final checkpoint (when persistence is on) and
// releases its engine. Call it after the HTTP listener has stopped
// accepting, so in-flight handlers have delivered their pushes to the
// queues being flushed. Idempotent; model creation after (or racing)
// Close is refused with ErrServerClosed, so no ingest loop outlives it.
func (s *Server) Close() error {
	s.stateMu.Lock()
	if s.closed {
		s.stateMu.Unlock()
		return nil
	}
	s.closed = true
	s.stateMu.Unlock()
	var wg sync.WaitGroup
	for _, m := range s.reg.list() {
		wg.Add(1)
		go func(m *model) {
			defer wg.Done()
			m.shutdown(true)
		}(m)
	}
	wg.Wait()
	return nil
}
