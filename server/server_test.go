package server_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	parsvd "goparsvd"
	"goparsvd/server"
	"goparsvd/server/client"
)

// boot spins up a server on an httptest listener and returns a client on
// it. Cleanup closes HTTP first, then flushes the server — the same order
// cmd/parsvd-serve uses.
func boot(t *testing.T, cfg server.Config) *client.Client {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = func(format string, args ...any) { t.Logf(format, args...) }
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return client.New(ts.URL)
}

func testMatrix(rows, cols int) *parsvd.Matrix {
	m := parsvd.NewMatrix(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			m.Set(i, j, float64((i+3)*(j+5)%13)+0.125*float64(i*j%7))
		}
	}
	return m
}

func wantStatus(t *testing.T, err error, status int) {
	t.Helper()
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v, want *client.APIError with status %d", err, status)
	}
	if apiErr.StatusCode != status {
		t.Fatalf("HTTP %d (%s), want %d", apiErr.StatusCode, apiErr.Message, status)
	}
}

func TestModelLifecycle(t *testing.T) {
	c := boot(t, server.Config{})
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	// Validation failures at create time.
	_, err := c.CreateModel(ctx, server.ModelSpec{Name: "no/slashes"})
	wantStatus(t, err, http.StatusBadRequest)
	_, err = c.CreateModel(ctx, server.ModelSpec{Name: "bogus", Backend: "quantum"})
	wantStatus(t, err, http.StatusBadRequest)
	_, err = c.CreateModel(ctx, server.ModelSpec{Name: "badff", ForgetFactor: 1.5})
	wantStatus(t, err, http.StatusBadRequest)

	// A distributed model registers like any other (its worker fleet
	// spawns lazily on the first push); it lists, reports stats and
	// deletes cleanly without ever having ingested data.
	distInfo, err := c.CreateModel(ctx, server.ModelSpec{Name: "dist", Backend: "distributed", Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if distInfo.Stats.Backend != "distributed" || distInfo.Stats.Ranks != 2 {
		t.Fatalf("distributed model info %+v, want distributed ranks=2", distInfo.Stats)
	}
	if err := c.DeleteModel(ctx, "dist"); err != nil {
		t.Fatal(err)
	}

	info, err := c.CreateModel(ctx, server.ModelSpec{Name: "a", Modes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.K != 3 || info.Stats.Backend != "serial" {
		t.Fatalf("created info %+v, want K=3 serial", info.Stats)
	}
	_, err = c.CreateModel(ctx, server.ModelSpec{Name: "a"})
	wantStatus(t, err, http.StatusConflict)

	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "b", Modes: 2, Backend: "parallel", Ranks: 2}); err != nil {
		t.Fatal(err)
	}

	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0].Spec.Name != "a" || models[1].Spec.Name != "b" {
		t.Fatalf("model list %+v, want [a b]", models)
	}

	// Reads against a model with no data: 409; unknown model: 404.
	_, err = c.Spectrum(ctx, "a")
	wantStatus(t, err, http.StatusConflict)
	_, err = c.Spectrum(ctx, "nope")
	wantStatus(t, err, http.StatusNotFound)
	_, err = c.Push(ctx, "nope", testMatrix(4, 1))
	wantStatus(t, err, http.StatusNotFound)

	if err := c.DeleteModel(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	err = c.DeleteModel(ctx, "b")
	wantStatus(t, err, http.StatusNotFound)
}

// TestPushAndQuery drives the full data path over HTTP for both in-process
// backends and cross-checks the served state against a direct facade run.
func TestPushAndQuery(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec server.ModelSpec
		opts []parsvd.Option
	}{
		{
			name: "serial",
			spec: server.ModelSpec{Name: "serial", Modes: 4, ForgetFactor: 0.95},
			opts: []parsvd.Option{parsvd.WithModes(4), parsvd.WithForgetFactor(0.95)},
		},
		{
			name: "parallel",
			spec: server.ModelSpec{Name: "parallel", Modes: 4, ForgetFactor: 0.95, Backend: "parallel", Ranks: 2},
			opts: []parsvd.Option{parsvd.WithModes(4), parsvd.WithForgetFactor(0.95), parsvd.WithBackend(parsvd.Parallel), parsvd.WithRanks(2)},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := boot(t, server.Config{})
			ctx := context.Background()
			if _, err := c.CreateModel(ctx, tc.spec); err != nil {
				t.Fatal(err)
			}

			const rows, cols, batch = 24, 18, 6
			snaps := testMatrix(rows, cols)
			ref, err := parsvd.New(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()

			var ack server.PushAck
			for at := 0; at < cols; at += batch {
				b := snaps.SliceCols(at, at+batch)
				if ack, err = c.Push(ctx, tc.spec.Name, b); err != nil {
					t.Fatal(err)
				}
				if err := ref.Push(b); err != nil {
					t.Fatal(err)
				}
			}
			if ack.Snapshots != cols {
				t.Fatalf("ack snapshots %d, want %d", ack.Snapshots, cols)
			}
			want, err := ref.Result()
			if err != nil {
				t.Fatal(err)
			}

			sp, err := c.Spectrum(ctx, tc.spec.Name)
			if err != nil {
				t.Fatal(err)
			}
			if len(sp.Singular) != len(want.Singular) {
				t.Fatalf("spectrum length %d, want %d", len(sp.Singular), len(want.Singular))
			}
			for i := range want.Singular {
				if sp.Singular[i] != want.Singular[i] {
					t.Fatalf("singular[%d] = %v, want %v (sequential HTTP pushes must match direct pushes bit-for-bit)", i, sp.Singular[i], want.Singular[i])
				}
			}

			modes, version, err := c.Modes(ctx, tc.spec.Name)
			if err != nil {
				t.Fatal(err)
			}
			if version != sp.Version {
				t.Fatalf("modes version %d != spectrum version %d", version, sp.Version)
			}
			if modes.Rows() != rows || modes.Cols() != 4 {
				t.Fatalf("modes %dx%d, want %dx4", modes.Rows(), modes.Cols(), rows)
			}

			// Server-side projection round trip against the view's modes.
			probe := snaps.SliceCols(0, 2)
			coeffs, err := c.Project(ctx, tc.spec.Name, probe)
			if err != nil {
				t.Fatal(err)
			}
			if coeffs.Rows() != 4 || coeffs.Cols() != 2 {
				t.Fatalf("coefficients %dx%d, want 4x2", coeffs.Rows(), coeffs.Cols())
			}
			back, err := c.Reconstruct(ctx, tc.spec.Name, coeffs)
			if err != nil {
				t.Fatal(err)
			}
			if rel := parsvd.Sub(back, probe).FroNorm() / probe.FroNorm(); rel > 0.5 {
				t.Fatalf("rank-4 reconstruction relative error %g is implausibly large", rel)
			}
			// Dimension mistakes come back as 400s, not panics.
			_, err = c.Project(ctx, tc.spec.Name, testMatrix(rows+1, 1))
			wantStatus(t, err, http.StatusBadRequest)
			_, err = c.Reconstruct(ctx, tc.spec.Name, testMatrix(5, 1))
			wantStatus(t, err, http.StatusBadRequest)

			stats, err := c.Model(ctx, tc.spec.Name)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Stats.Snapshots != cols || stats.Stats.Rows != rows || stats.Stats.Updates != int64(cols/batch) {
				t.Fatalf("served stats %+v, want %d snapshots / %d rows / %d updates", stats.Stats, cols, rows, cols/batch)
			}
			if tc.name == "parallel" && stats.Stats.Messages == 0 {
				t.Fatal("parallel model reports zero inter-rank messages")
			}
		})
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, err := server.New(server.Config{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()
	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "m1", Modes: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push(ctx, "m1", testMatrix(8, 3)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"parsvd_models 1",
		`parsvd_model_snapshots{model="m1"} 3`,
		`parsvd_model_queue_depth{model="m1"} 0`,
		"parsvd_http_requests_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics output lacks %q:\n%s", want, text)
		}
	}
}

// TestCheckpointRestartRoundTrip proves the persistence loop: push, shut
// down (final checkpoint), boot a second server on the same directory,
// and find the model live with a bit-identical spectrum, still ingesting.
func TestCheckpointRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{CheckpointDir: dir, CheckpointInterval: time.Hour, Logf: func(string, ...any) {}}
	ctx := context.Background()

	srv1, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := client.New(ts1.URL)
	if _, err := c1.CreateModel(ctx, server.ModelSpec{Name: "persist", Modes: 3, ForgetFactor: 0.9}); err != nil {
		t.Fatal(err)
	}
	snaps := testMatrix(16, 12)
	if _, err := c1.Push(ctx, "persist", snaps.SliceCols(0, 8)); err != nil {
		t.Fatal(err)
	}
	before, err := c1.Spectrum(ctx, "persist")
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := srv1.Close(); err != nil { // graceful shutdown writes the final checkpoint
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "persist.ckpt")); err != nil {
		t.Fatalf("no checkpoint written at shutdown: %v", err)
	}

	srv2, err := server.New(cfg) // restore-on-boot
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close()
	c2 := client.New(ts2.URL)

	after, err := c2.Spectrum(ctx, "persist")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Singular) != len(before.Singular) {
		t.Fatalf("restored spectrum length %d, want %d", len(after.Singular), len(before.Singular))
	}
	for i := range before.Singular {
		if after.Singular[i] != before.Singular[i] {
			t.Fatalf("restored singular[%d] = %v, want bit-identical %v", i, after.Singular[i], before.Singular[i])
		}
	}
	info, err := c2.Model(ctx, "persist")
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Snapshots != 8 {
		t.Fatalf("restored snapshots = %d, want 8", info.Stats.Snapshots)
	}
	// The restored spec must echo the full configuration the checkpoint
	// carries, not just what Stats exposes.
	if info.Spec.Modes != 3 || info.Spec.ForgetFactor != 0.9 || info.Spec.Backend != "serial" {
		t.Fatalf("restored spec %+v, want modes=3 forget_factor=0.9 serial", info.Spec)
	}

	// The restored model keeps streaming.
	ack, err := c2.Push(ctx, "persist", snaps.SliceCols(8, 12))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Snapshots != 12 {
		t.Fatalf("snapshots after restored push = %d, want 12", ack.Snapshots)
	}
}

// TestCorruptCheckpointQuarantined: one bad checkpoint must not take the
// whole server down — it is renamed out of the way and every healthy
// model still restores.
func TestCorruptCheckpointQuarantined(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{CheckpointDir: dir, CheckpointInterval: time.Hour, Logf: func(string, ...any) {}}
	ctx := context.Background()

	srv1, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := client.New(ts1.URL)
	if _, err := c1.CreateModel(ctx, server.ModelSpec{Name: "good", Modes: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Push(ctx, "good", testMatrix(8, 4)); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, err := server.New(cfg)
	if err != nil {
		t.Fatalf("one corrupt checkpoint failed the whole boot: %v", err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	c2 := client.New(ts2.URL)
	models, err := c2.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Spec.Name != "good" {
		t.Fatalf("restored models %+v, want just [good]", models)
	}
	if _, err := os.Stat(filepath.Join(dir, "broken.ckpt.bad")); err != nil {
		t.Fatalf("corrupt checkpoint was not quarantined: %v", err)
	}
}

// TestDeleteRemovesCheckpoint: deleting a model must also delete its
// checkpoint so it cannot resurrect on the next boot.
func TestDeleteRemovesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{CheckpointDir: dir, CheckpointInterval: 5 * time.Millisecond, Logf: func(string, ...any) {}}
	ctx := context.Background()
	c := boot(t, cfg)
	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "gone", Modes: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push(ctx, "gone", testMatrix(8, 4)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "gone.ckpt")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.DeleteModel(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survives model deletion: %v", err)
	}
}

// TestCreateAfterClose: a closed server refuses new models (503) instead
// of leaking an ingest loop that no Close will ever flush.
func TestCreateAfterClose(t *testing.T) {
	srv, err := server.New(server.Config{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = c.CreateModel(ctx, server.ModelSpec{Name: "late", Modes: 2})
	wantStatus(t, err, http.StatusServiceUnavailable)
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestOversizedBody: a push beyond MaxBodyBytes is refused with 413.
func TestOversizedBody(t *testing.T) {
	c := boot(t, server.Config{MaxBodyBytes: 1024})
	ctx := context.Background()
	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "small", Modes: 2}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Push(ctx, "small", testMatrix(64, 64))
	wantStatus(t, err, http.StatusRequestEntityTooLarge)
}
