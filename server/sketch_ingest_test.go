package server_test

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	parsvd "goparsvd"
	"goparsvd/server"
)

// sketchPair compresses batch into a (Q, S) factor pair the way a
// producer would before shipping it to the serving API.
func sketchPair(t *testing.T, batch *parsvd.Matrix, cfg parsvd.SketchConfig) (q, s *parsvd.Matrix) {
	t.Helper()
	q, s, err := parsvd.Sketch(batch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if q == nil || s == nil {
		t.Fatalf("sketch of %dx%d batch fell back to raw; pick a compressible geometry", batch.Rows(), batch.Cols())
	}
	return q, s
}

// TestPushSketchEndToEnd: POST /v1/models/{name}/push-sketch applies a
// compressed factor pair exactly like an in-process PushSketch — same
// spectrum bit-for-bit — and the traffic counters surface the
// compression in both /v1/models/{name} stats and /metrics.
func TestPushSketchEndToEnd(t *testing.T) {
	const k, rows, cols, l = 4, 32, 16, 6
	c := boot(t, server.Config{})
	ctx := context.Background()
	if _, err := c.CreateModel(ctx, server.ModelSpec{Name: "sk", Modes: k}); err != nil {
		t.Fatal(err)
	}

	batch := testMatrix(rows, cols)
	q, s := sketchPair(t, batch, parsvd.SketchConfig{MaxRank: l})
	ack, err := c.PushSketched(ctx, "sk", q, s)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Snapshots != cols {
		t.Fatalf("ack snapshots = %d, want %d", ack.Snapshots, cols)
	}

	// Reference: the identical pair through the in-process facade.
	ref, err := parsvd.New(parsvd.WithModes(k))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.PushSketch(q, s); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Result()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := c.Spectrum(ctx, "sk")
	if err != nil {
		t.Fatal(err)
	}
	wantBitIdentical(t, sp.Singular, want.Singular, "sketched ingest")

	// Traffic counters: logical bytes are the full batch, wire bytes the
	// factor pair.
	info, err := c.Model(ctx, "sk")
	if err != nil {
		t.Fatal(err)
	}
	st := info.Stats
	if st.SketchedPushes != 1 {
		t.Fatalf("sketched_pushes = %d, want 1", st.SketchedPushes)
	}
	if want := int64(8 * rows * cols); st.PushedBytes != want {
		t.Fatalf("pushed_bytes = %d, want %d", st.PushedBytes, want)
	}
	if want := int64(8 * l * (rows + cols)); st.WireBytes != want {
		t.Fatalf("wire_bytes = %d, want %d", st.WireBytes, want)
	}
	if st.WireBytes >= st.PushedBytes {
		t.Fatalf("wire_bytes %d >= pushed_bytes %d: no compression recorded", st.WireBytes, st.PushedBytes)
	}

	// The same counters show up on the metrics endpoint.
	metrics := getBody(t, c.BaseURL+"/metrics")
	for _, line := range []string{
		`parsvd_model_sketched_pushes{model="sk"} 1`,
		`parsvd_model_pushed_bytes{model="sk"} 4096`,
		`parsvd_model_wire_bytes{model="sk"} 2304`,
	} {
		if !strings.Contains(metrics, line) {
			t.Fatalf("/metrics lacks %q:\n%s", line, metrics)
		}
	}

	// A torn pair — inner dimensions disagree — is a 400, not a panic,
	// and does not poison the model.
	_, err = c.PushSketched(ctx, "sk", q, s.SliceRows(0, s.Rows()-1))
	wantStatus(t, err, http.StatusBadRequest)
	if _, err := c.Push(ctx, "sk", testMatrix(rows, 4)); err != nil {
		t.Fatalf("model poisoned after rejected sketch: %v", err)
	}
}

// TestSketchWALReplay: a sketched push is one compressed WAL record (the
// factor pair, not the reconstructed batch); a crash after the ack must
// recover the model — raw batch, sketch, raw batch — bit-for-bit from
// spec + WAL alone.
func TestSketchWALReplay(t *testing.T) {
	const k = 4
	dir := t.TempDir()
	cfg := server.Config{CheckpointDir: dir, CheckpointInterval: time.Hour, Logf: func(string, ...any) {}}
	ctx := context.Background()

	s1 := bootCrashable(t, cfg)
	if _, err := s1.c.CreateModel(ctx, server.ModelSpec{Name: "m", Modes: k}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.c.Push(ctx, "m", testMatrix(32, 8)); err != nil {
		t.Fatal(err)
	}
	q, sk := sketchPair(t, testMatrix(32, 16), parsvd.SketchConfig{MaxRank: 6})
	if _, err := s1.c.PushSketched(ctx, "m", q, sk); err != nil {
		t.Fatal(err)
	}
	// One more raw batch after the sketch, so replay must cross the
	// sketch record and keep going.
	if _, err := s1.c.Push(ctx, "m", testMatrix(32, 4)); err != nil {
		t.Fatal(err)
	}
	want, err := s1.c.Spectrum(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	s1.crash()

	s2 := bootCrashable(t, cfg)
	got, err := s2.c.Spectrum(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	wantBitIdentical(t, got.Singular, want.Singular, "sketch replay")
	var h server.HealthResponse
	getJSON(t, s2.ts.URL+"/healthz", &h)
	if len(h.Health) != 1 || h.Health[0].ReplayedOnBoot != 3 {
		t.Fatalf("post-recovery health %+v, want replayed_on_boot=3", h.Health)
	}
	// The recovered model still ingests sketches.
	q2, sk2 := sketchPair(t, testMatrix(32, 16), parsvd.SketchConfig{MaxRank: 6})
	if _, err := s2.c.PushSketched(ctx, "m", q2, sk2); err != nil {
		t.Fatal(err)
	}
	s2.ts.Close()
	if err := s2.srv.Close(); err != nil {
		t.Fatal(err)
	}
}
