package server_test

import (
	"context"
	"io"
	"math"
	"net"
	"net/http"
	"testing"

	parsvd "goparsvd"
	"goparsvd/server"
	"goparsvd/server/client"
)

// TestServeSmoke is the CI serving gate (make serve-smoke): boot the
// server on a random loopback port, create a model matching the
// deterministic benchmark workload, stream the FromWorkload batches at it
// through the typed client, and require the served spectrum to match an
// in-process serial Fit of the same workload within 1e-12.
func TestServeSmoke(t *testing.T) {
	ctx := context.Background()
	w := parsvd.DefaultWorkload()

	// In-process reference: the facade fits the workload directly.
	refOpts := []parsvd.Option{
		parsvd.WithModes(w.K),
		parsvd.WithForgetFactor(w.FF),
		parsvd.WithInitRank(w.R1),
	}
	ref, err := parsvd.New(refOpts...)
	if err != nil {
		t.Fatal(err)
	}
	refSrc, err := parsvd.FromWorkload(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Fit(ctx, refSrc)
	if err != nil {
		t.Fatal(err)
	}

	// Server on a random port, fed the identical batches over HTTP.
	srv, err := server.New(server.Config{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer func() {
		httpSrv.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	}()

	c := client.New("http://" + ln.Addr().String())
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateModel(ctx, server.ModelSpec{
		Name:         "smoke",
		Modes:        w.K,
		ForgetFactor: w.FF,
		InitRank:     w.R1,
	}); err != nil {
		t.Fatal(err)
	}

	src, err := parsvd.FromWorkload(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ack server.PushAck
	for {
		b, err := src.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ack, err = c.Push(ctx, "smoke", b); err != nil {
			t.Fatal(err)
		}
	}
	if ack.Snapshots != w.Snapshots {
		t.Fatalf("server ingested %d snapshots, want %d", ack.Snapshots, w.Snapshots)
	}

	got, err := c.Spectrum(ctx, "smoke")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Singular) != len(want.Singular) {
		t.Fatalf("served spectrum has %d values, want %d", len(got.Singular), len(want.Singular))
	}
	var maxDiff float64
	for i := range want.Singular {
		if d := math.Abs(got.Singular[i] - want.Singular[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-12 {
		t.Fatalf("served spectrum deviates from the in-process run by %g, want <= 1e-12", maxDiff)
	}
	t.Logf("serve-smoke: %d snapshots over HTTP, spectrum max deviation %g", ack.Snapshots, maxDiff)
}
