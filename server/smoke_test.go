package server_test

import (
	"context"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	parsvd "goparsvd"
	"goparsvd/server"
	"goparsvd/server/client"
)

// TestServeSmoke is the CI serving gate (make serve-smoke): boot the
// server on a random loopback port, create a model matching the
// deterministic benchmark workload, stream the FromWorkload batches at it
// through the typed client, and require the served spectrum to match an
// in-process serial Fit of the same workload within 1e-12.
func TestServeSmoke(t *testing.T) {
	ctx := context.Background()
	w := parsvd.DefaultWorkload()

	// In-process reference: the facade fits the workload directly.
	refOpts := []parsvd.Option{
		parsvd.WithModes(w.K),
		parsvd.WithForgetFactor(w.FF),
		parsvd.WithInitRank(w.R1),
	}
	ref, err := parsvd.New(refOpts...)
	if err != nil {
		t.Fatal(err)
	}
	refSrc, err := parsvd.FromWorkload(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Fit(ctx, refSrc)
	if err != nil {
		t.Fatal(err)
	}

	// Server on a random port, fed the identical batches over HTTP.
	srv, err := server.New(server.Config{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer func() {
		httpSrv.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	}()

	c := client.New("http://" + ln.Addr().String())
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateModel(ctx, server.ModelSpec{
		Name:         "smoke",
		Modes:        w.K,
		ForgetFactor: w.FF,
		InitRank:     w.R1,
	}); err != nil {
		t.Fatal(err)
	}

	src, err := parsvd.FromWorkload(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ack server.PushAck
	for {
		b, err := src.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ack, err = c.Push(ctx, "smoke", b); err != nil {
			t.Fatal(err)
		}
	}
	if ack.Snapshots != w.Snapshots {
		t.Fatalf("server ingested %d snapshots, want %d", ack.Snapshots, w.Snapshots)
	}

	got, err := c.Spectrum(ctx, "smoke")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Singular) != len(want.Singular) {
		t.Fatalf("served spectrum has %d values, want %d", len(got.Singular), len(want.Singular))
	}
	var maxDiff float64
	for i := range want.Singular {
		if d := math.Abs(got.Singular[i] - want.Singular[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-12 {
		t.Fatalf("served spectrum deviates from the in-process run by %g, want <= 1e-12", maxDiff)
	}
	t.Logf("serve-smoke: %d snapshots over HTTP, spectrum max deviation %g", ack.Snapshots, maxDiff)
}

// TestServeSmokeDistributed is the distributed half of the serving gate:
// a model created through POST /v1/models with backend "distributed"
// spawns a persistent 2-process worker fleet on its first HTTP push,
// every batch of real snapshot data crosses HTTP and then the worker
// wire, and the served spectrum must still match an in-process serial
// run of the identical stream within 1e-12. The model checkpoints like
// any other: Close gathers the fleet's state into <dir>/<name>.ckpt.
func TestServeSmokeDistributed(t *testing.T) {
	const ranks = 2
	ctx := context.Background()
	w := parsvd.DefaultWorkload()
	w.RowsPerRank = 64
	w.Snapshots = 48
	w.InitBatch = 12
	w.Batch = 12
	w.K = 6
	w.R1 = 16

	// In-process serial reference over the identical batches.
	ref, err := parsvd.New(parsvd.WithModes(w.K), parsvd.WithForgetFactor(w.FF), parsvd.WithInitRank(w.R1))
	if err != nil {
		t.Fatal(err)
	}
	refSrc, err := parsvd.FromWorkload(w, ranks)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Fit(ctx, refSrc)
	if err != nil {
		t.Fatal(err)
	}

	ckptDir := t.TempDir()
	srv, err := server.New(server.Config{Logf: func(string, ...any) {}, CheckpointDir: ckptDir})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	c := client.New("http://" + ln.Addr().String())
	if _, err := c.CreateModel(ctx, server.ModelSpec{
		Name:         "dist-smoke",
		Modes:        w.K,
		ForgetFactor: w.FF,
		InitRank:     w.R1,
		Backend:      "distributed",
		Ranks:        ranks,
	}); err != nil {
		t.Fatal(err)
	}

	src, err := parsvd.FromWorkload(w, ranks)
	if err != nil {
		t.Fatal(err)
	}
	for {
		b, err := src.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Push(ctx, "dist-smoke", b); err != nil {
			t.Fatal(err)
		}
	}

	got, err := c.Spectrum(ctx, "dist-smoke")
	if err != nil {
		t.Fatal(err)
	}
	if got.ModesSHA256 == "" {
		t.Fatal("served distributed spectrum carries no modes fingerprint")
	}
	if len(got.Singular) != len(want.Singular) {
		t.Fatalf("served spectrum has %d values, want %d", len(got.Singular), len(want.Singular))
	}
	var maxDiff float64
	for i := range want.Singular {
		if d := math.Abs(got.Singular[i] - want.Singular[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-12 {
		t.Fatalf("served distributed spectrum deviates from the serial run by %g, want <= 1e-12", maxDiff)
	}
	info, err := c.Model(ctx, "dist-smoke")
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Backend != "distributed" || info.Stats.Ranks != ranks ||
		info.Stats.Rows != w.RowsPerRank*ranks || info.Stats.Snapshots != w.Snapshots ||
		info.Stats.Messages == 0 || info.Stats.Bytes == 0 {
		t.Fatalf("served distributed stats incomplete: %+v", info.Stats)
	}

	// The modes matrix itself is not servable — only its fingerprint.
	if _, _, err := c.Modes(ctx, "dist-smoke"); err == nil {
		t.Fatal("modes of a distributed model did not error")
	}

	// Graceful shutdown gathers the fleet's state into a checkpoint that
	// restores (serially) with the spectrum intact.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(ckptDir, "dist-smoke.ckpt"))
	if err != nil {
		t.Fatalf("no checkpoint written for the distributed model: %v", err)
	}
	defer f.Close()
	restored, err := parsvd.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := restored.Result()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Singular {
		if d := math.Abs(res.Singular[i] - got.Singular[i]); d > 0 {
			t.Fatalf("restored checkpoint spectrum differs from the served one at mode %d", i)
		}
	}
	t.Logf("dist-serve-smoke: %d snapshots over HTTP into a %d-rank fleet, max deviation %g", w.Snapshots, ranks, maxDiff)
}
