package server

import (
	"fmt"
	"regexp"

	parsvd "goparsvd"
)

// ModelSpec is the JSON shape of a model: a name plus the subset of the
// parsvd functional options that make sense for a served, push-driven
// decomposition. Zero-valued fields keep the parsvd defaults (K = 10,
// forget factor 1.0, serial backend), exactly as omitting the
// corresponding option in Go would.
type ModelSpec struct {
	// Name identifies the model in every URL and checkpoint file name:
	// 1-64 characters of [A-Za-z0-9._-], starting alphanumeric.
	Name string `json:"name"`
	// Modes is K, the truncation rank (parsvd.WithModes).
	Modes int `json:"modes,omitempty"`
	// ForgetFactor is ff in (0, 1] (parsvd.WithForgetFactor).
	ForgetFactor float64 `json:"forget_factor,omitempty"`
	// Backend is "serial" (default), "parallel" (in-process rank
	// goroutines) or "distributed" (a persistent fleet of one worker OS
	// process per rank; pushes are row-scattered to it over the wire).
	// Distributed models serve spectrum, stats and checkpoints like the
	// others, but no mode matrix — the modes live row-distributed in the
	// worker processes and are only gathered for checkpoints.
	Backend string `json:"backend,omitempty"`
	// Ranks is the world size of the parallel and distributed backends
	// (parsvd.WithRanks).
	Ranks int `json:"ranks,omitempty"`
	// InitRank is r1, the APMOS gather truncation (parsvd.WithInitRank).
	InitRank int `json:"init_rank,omitempty"`
	// LowRank, when present, turns on the randomized pipeline
	// (parsvd.WithLowRank).
	LowRank *LowRankSpec `json:"low_rank,omitempty"`
	// Shard, when present, marks the model as one shard-local fit of a
	// partitioned stream (parsvd.WithShard): shard Index of Count
	// disjoint snapshot subsets. The mark is stamped into every
	// checkpoint the model writes or exports, and merge validation uses
	// it to refuse absorbing the same shard twice. The cross-node
	// coordinator (goparsvd/coord) creates its per-shard models with it.
	Shard *ShardSpec `json:"shard,omitempty"`
}

// ShardSpec is the JSON shape of a shard provenance mark.
type ShardSpec struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// LowRankSpec tunes the randomized SVD sketch (parsvd.RLA).
type LowRankSpec struct {
	Oversample int   `json:"oversample,omitempty"`
	PowerIters int   `json:"power_iters,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
}

var modelNameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// validName reports whether a model name is acceptable as a URL path
// segment and a checkpoint file stem.
func validName(name string) bool { return modelNameRe.MatchString(name) }

// options maps the spec onto parsvd functional options. Misconfiguration
// is reported here or by parsvd.New — either way as an error the handler
// turns into a 400, never a panic.
func (sp *ModelSpec) options() ([]parsvd.Option, error) {
	if !validName(sp.Name) {
		return nil, fmt.Errorf("server: invalid model name %q: want 1-64 chars of [A-Za-z0-9._-], starting alphanumeric", sp.Name)
	}
	var opts []parsvd.Option
	if sp.Modes != 0 {
		opts = append(opts, parsvd.WithModes(sp.Modes))
	}
	if sp.ForgetFactor != 0 {
		opts = append(opts, parsvd.WithForgetFactor(sp.ForgetFactor))
	}
	switch sp.Backend {
	case "", parsvd.Serial.String():
		// The parsvd default.
	case parsvd.Parallel.String():
		opts = append(opts, parsvd.WithBackend(parsvd.Parallel))
	case parsvd.Distributed.String():
		opts = append(opts, parsvd.WithBackend(parsvd.Distributed))
	default:
		return nil, fmt.Errorf("server: unknown backend %q (want %q, %q or %q)",
			sp.Backend, parsvd.Serial, parsvd.Parallel, parsvd.Distributed)
	}
	if sp.Ranks != 0 {
		opts = append(opts, parsvd.WithRanks(sp.Ranks))
	}
	if sp.InitRank != 0 {
		opts = append(opts, parsvd.WithInitRank(sp.InitRank))
	}
	if sp.LowRank != nil {
		opts = append(opts, parsvd.WithLowRank(parsvd.RLA{
			Oversample: sp.LowRank.Oversample,
			PowerIters: sp.LowRank.PowerIters,
			Seed:       sp.LowRank.Seed,
		}))
	}
	if sp.Shard != nil {
		opts = append(opts, parsvd.WithShard(sp.Shard.Index, sp.Shard.Count))
	}
	return opts, nil
}
