package server

import (
	parsvd "goparsvd"
)

// View is one published snapshot of a model's decomposition, produced by
// the ingest loop after every applied micro-batch (copy-on-publish).
// Result and Stats are deep copies that share no storage with the engine,
// so a View handed to a reader stays valid and bit-stable forever — no
// matter how many updates the writer applies after it. Readers must treat
// a View as immutable; a reader that wants to scribble on the matrices
// takes its own Result.Clone().
type View struct {
	// Version is the monotone update counter at publish time
	// (parsvd.Stats.Updates): two Views compare fresher-than by it.
	Version uint64
	// Result is the decomposition as of Version: modes, spectrum,
	// counters. Owned by the view layer; read-only for consumers.
	Result *parsvd.Result
	// Stats is the introspection snapshot taken at publish time.
	Stats parsvd.Stats
}
