package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	parsvd "goparsvd"
	"goparsvd/internal/mpi"
	"goparsvd/internal/mpi/tcptransport"
	"goparsvd/internal/wal"
)

// FsyncPolicy says when a model's write-ahead log reaches stable storage,
// and therefore what a 200 push ack means:
//
//   - FsyncAlways: the record is fsynced before the ack. An acked push
//     survives kill -9 and machine power loss (short of a lying disk).
//   - FsyncInterval: records are flushed in the background every
//     Config.FsyncInterval. An acked push survives a process crash (the
//     OS page cache holds it) but up to one interval of acked pushes can
//     be lost to a whole-machine failure.
//   - FsyncNever: flushing is left to the OS entirely. An acked push
//     survives a process crash; a machine failure loses whatever the
//     kernel had not written back yet.
//
// Without a WAL at all (Config.DisableWAL, or no CheckpointDir), an ack
// only means "applied in memory": every push since the last periodic
// checkpoint is lost on any crash. /healthz reports that exposure as the
// per-model dirty age.
type FsyncPolicy string

const (
	FsyncAlways   FsyncPolicy = "always"
	FsyncInterval FsyncPolicy = "interval"
	FsyncNever    FsyncPolicy = "never"
)

// syncPolicy maps the config spelling onto the wal package's policy. The
// empty string is the FsyncAlways default.
func (p FsyncPolicy) syncPolicy() (wal.SyncPolicy, error) {
	if p == "" {
		p = FsyncAlways
	}
	return wal.ParseSyncPolicy(string(p))
}

// Per-model on-disk layout under Config.CheckpointDir:
//
//	<name>.ckpt       periodic checkpoint (atomic write-then-rename)
//	<name>.spec.json  the creation spec, written durably at create time
//	<name>.wal/       segmented write-ahead log of applied micro-batches
//
// The spec file is what makes model creation itself durable: a model that
// crashes before its first checkpoint is rebuilt from the spec and
// re-fed from the WAL — including a distributed model, whose replay
// re-spawns and re-feeds its worker fleet.
func specFilePath(dir, name string) string { return filepath.Join(dir, name+".spec.json") }
func walDirPath(dir, name string) string   { return filepath.Join(dir, name+".wal") }

// openModelWAL opens (creating if absent) the model's write-ahead log
// with the server's durability policy.
func openModelWAL(cfg Config, name string) (*wal.Log, error) {
	sync, err := cfg.Fsync.syncPolicy()
	if err != nil {
		return nil, err
	}
	return wal.Open(walDirPath(cfg.CheckpointDir, name), wal.Options{
		Sync:     sync,
		Interval: cfg.FsyncInterval,
		Logf:     cfg.Logf,
	})
}

// encodeBatchPayload frames one applied micro-batch as a WAL record
// payload, reusing the tcptransport float64 body codec so the matrix
// round-trips bit-for-bit (IEEE-754 bit patterns, little-endian) —
// replaying the log reproduces the exact update stream.
func encodeBatchPayload(b *parsvd.Matrix) []byte {
	msg := mpi.Message{Rows: b.Rows(), Cols: b.Cols(), Data: b.RawData()}
	return tcptransport.AppendMessageBody(make([]byte, 0, 32+8*len(msg.Data)), msg)
}

// mergeMagic prefixes a WAL record that carries a merge instead of a
// snapshot micro-batch: the payload is the magic followed by the
// absorbed checkpoint bytes, verbatim. The prefix cannot collide with a
// batch record: a batch payload is a tcptransport message body, whose
// first 8 bytes are the little-endian Tag — always zero for ingest
// batches — while the magic is 8 non-zero ASCII bytes.
var mergeMagic = []byte("GPSVMERG")

// encodeMergePayload frames an applied merge for the WAL: replaying it
// re-applies the exact same checkpoint through parsvd.SVD.Merge.
func encodeMergePayload(ckpt []byte) []byte {
	return append(append(make([]byte, 0, len(mergeMagic)+len(ckpt)), mergeMagic...), ckpt...)
}

// isMergePayload distinguishes merge records from batch records.
func isMergePayload(payload []byte) bool {
	return len(payload) >= len(mergeMagic) && string(payload[:len(mergeMagic)]) == string(mergeMagic)
}

// mergeCheckpoint strips the magic, returning the absorbed checkpoint.
func mergeCheckpoint(payload []byte) []byte { return payload[len(mergeMagic):] }

// sketchMagic prefixes a WAL record that carries a sketched push: the
// compressed (Q, S) factor pair is logged exactly as it arrived — never
// the reconstructed Q·S — so the log stays as small as the wire traffic
// and replay reproduces the identical deterministic reconstruction. Like
// mergeMagic, the 8 non-zero ASCII bytes cannot collide with a batch
// record (whose first 8 bytes are the always-zero little-endian Tag).
var sketchMagic = []byte("GPSVSKCH")

// encodeSketchPayload frames an applied sketched push for the WAL:
// magic, a u32le length of the Q body, then the Q and S matrices in the
// same bit-exact tcptransport float64 framing batch records use.
func encodeSketchPayload(q, s *parsvd.Matrix) []byte {
	qm := mpi.Message{Rows: q.Rows(), Cols: q.Cols(), Data: q.RawData()}
	sm := mpi.Message{Rows: s.Rows(), Cols: s.Cols(), Data: s.RawData()}
	qBody := tcptransport.AppendMessageBody(make([]byte, 0, 32+8*len(qm.Data)), qm)
	payload := make([]byte, 0, len(sketchMagic)+4+len(qBody)+32+8*len(sm.Data))
	payload = append(payload, sketchMagic...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(qBody)))
	payload = append(payload, qBody...)
	return tcptransport.AppendMessageBody(payload, sm)
}

// isSketchPayload distinguishes sketched-push records from the others.
func isSketchPayload(payload []byte) bool {
	return len(payload) >= len(sketchMagic) && string(payload[:len(sketchMagic)]) == string(sketchMagic)
}

// decodeSketchPayload is the replay-side inverse of encodeSketchPayload.
func decodeSketchPayload(payload []byte) (q, s *parsvd.Matrix, err error) {
	body := payload[len(sketchMagic):]
	if len(body) < 4 {
		return nil, nil, fmt.Errorf("server: wal sketch record truncated (%d bytes)", len(payload))
	}
	qlen := int(binary.LittleEndian.Uint32(body))
	body = body[4:]
	if qlen < 0 || qlen > len(body) {
		return nil, nil, fmt.Errorf("server: wal sketch record claims %d-byte Q in a %d-byte body", qlen, len(body))
	}
	decode := func(part []byte, what string) (*parsvd.Matrix, error) {
		msg, err := tcptransport.DecodeMessageBody(part)
		if err != nil {
			return nil, fmt.Errorf("server: wal sketch record %s: %w", what, err)
		}
		m, err := parsvd.NewMatrixFromData(msg.Rows, msg.Cols, msg.Data)
		if err != nil {
			return nil, fmt.Errorf("server: wal sketch record carries a malformed %dx%d %s factor: %w", msg.Rows, msg.Cols, what, err)
		}
		return m, nil
	}
	if q, err = decode(body[:qlen], "Q"); err != nil {
		return nil, nil, err
	}
	if s, err = decode(body[qlen:], "S"); err != nil {
		return nil, nil, err
	}
	return q, s, nil
}

// decodeBatchPayload is the replay-side inverse.
func decodeBatchPayload(payload []byte) (*parsvd.Matrix, error) {
	msg, err := tcptransport.DecodeMessageBody(payload)
	if err != nil {
		return nil, fmt.Errorf("server: wal record: %w", err)
	}
	m, err := parsvd.NewMatrixFromData(msg.Rows, msg.Cols, msg.Data)
	if err != nil {
		return nil, fmt.Errorf("server: wal record carries a malformed %dx%d batch: %w", msg.Rows, msg.Cols, err)
	}
	return m, nil
}

// writeSpecFile persists the creation spec durably (write, fsync, atomic
// rename, directory fsync), so the model exists after a crash even before
// its first checkpoint.
func writeSpecFile(dir string, spec ModelSpec) error {
	buf, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encoding model spec: %w", err)
	}
	path := specFilePath(dir, spec.Name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("server: writing model spec: %w", err)
	}
	if _, err := f.Write(append(buf, '\n')); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("server: writing model spec: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: writing model spec: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: writing model spec: %w", err)
	}
	syncDir(dir)
	return nil
}

// readSpecFile loads a persisted creation spec and validates it belongs
// to the named model.
func readSpecFile(dir, name string) (ModelSpec, error) {
	buf, err := os.ReadFile(specFilePath(dir, name))
	if err != nil {
		return ModelSpec{}, err
	}
	var spec ModelSpec
	if err := json.Unmarshal(buf, &spec); err != nil {
		return ModelSpec{}, fmt.Errorf("server: parsing model spec: %w", err)
	}
	if spec.Name != name {
		return ModelSpec{}, fmt.Errorf("server: spec file for %q names model %q", name, spec.Name)
	}
	return spec, nil
}

// quarantine renames a damaged file or directory out of the model
// namespace (the ".bad" convention checkpoints already use) so the next
// boot does not trip over it again. Best-effort.
func quarantine(logf func(string, ...any), path string) {
	if _, err := os.Stat(path); err != nil {
		return
	}
	if err := os.Rename(path, path+".bad"); err != nil {
		logf("parsvd-serve: quarantining %s: %v", path, err)
		return
	}
	logf("parsvd-serve: quarantined %s as %s.bad", path, path)
}

// syncDir fsyncs a directory so renames inside it survive a crash.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
