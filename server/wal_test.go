package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	parsvd "goparsvd"
	"goparsvd/server"
	"goparsvd/server/client"
)

// crashableServer is a server whose process "crash" we simulate by
// abandoning it: the HTTP listener closes but Close is never called, so no
// final checkpoint is written and whatever the WAL holds is all that
// survives — the same state a kill -9 leaves behind (the real-SIGKILL
// version of this lives in crash_test.go).
type crashableServer struct {
	srv *server.Server
	ts  *httptest.Server
	c   *client.Client
}

func bootCrashable(t *testing.T, cfg server.Config) *crashableServer {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = func(format string, args ...any) { t.Logf(format, args...) }
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return &crashableServer{srv: srv, ts: ts, c: client.New(ts.URL)}
}

// crash abandons the server without flushing: no Close, no final
// checkpoint.
func (s *crashableServer) crash() { s.ts.Close() }

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// referenceSpectrum runs the same batch sequence through an in-process
// serial engine: the ground truth any recovery must match bit-for-bit.
func referenceSpectrum(t *testing.T, spec server.ModelSpec, batches []*parsvd.Matrix) []float64 {
	t.Helper()
	opts := []parsvd.Option{parsvd.WithModes(spec.Modes)}
	if spec.ForgetFactor != 0 {
		opts = append(opts, parsvd.WithForgetFactor(spec.ForgetFactor))
	}
	svd, err := parsvd.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer svd.Close()
	for _, b := range batches {
		if err := svd.Push(b); err != nil {
			t.Fatal(err)
		}
	}
	res, err := svd.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res.Singular
}

func wantBitIdentical(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: spectrum length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: singular[%d] = %v, want bit-identical %v", what, i, got[i], want[i])
		}
	}
}

// newestSegment returns the path of the newest WAL segment of a model.
func newestSegment(t *testing.T, dir, name string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, name+".wal", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments for %s: %v", name, err)
	}
	return segs[len(segs)-1]
}

// TestWALCrashRecovery is the core durability contract at the unit level:
// a server that dies without checkpointing loses nothing that was acked —
// the spec file rebuilds the model and the WAL replays every applied
// micro-batch, bit-for-bit. Booting twice is idempotent.
func TestWALCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{CheckpointDir: dir, CheckpointInterval: time.Hour, Logf: func(string, ...any) {}}
	ctx := context.Background()
	spec := server.ModelSpec{Name: "persist", Modes: 3, ForgetFactor: 0.9}
	snaps := testMatrix(16, 16)
	batches := []*parsvd.Matrix{snaps.SliceCols(0, 8), snaps.SliceCols(8, 12), snaps.SliceCols(12, 16)}

	s1 := bootCrashable(t, cfg)
	if _, err := s1.c.CreateModel(ctx, spec); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := s1.c.Push(ctx, "persist", b); err != nil {
			t.Fatal(err)
		}
	}

	// Durability exposure is visible before the crash: the model is dirty
	// (no checkpoint yet) and the WAL holds all three records.
	var h server.HealthResponse
	getJSON(t, s1.ts.URL+"/healthz", &h)
	if len(h.Health) != 1 || !h.Health[0].Dirty || !h.Health[0].WAL || h.Health[0].WALRecords != 3 {
		t.Fatalf("pre-crash health %+v, want dirty=true wal=true wal_records=3", h.Health)
	}
	if h.Health[0].DirtyAgeSeconds <= 0 {
		t.Fatalf("dirty model reports age %v, want > 0", h.Health[0].DirtyAgeSeconds)
	}
	metrics := getBody(t, s1.ts.URL+"/metrics")
	if !strings.Contains(metrics, `parsvd_model_wal_appends{model="persist"} 3`) {
		t.Fatalf("metrics missing wal_appends=3:\n%s", metrics)
	}
	if !strings.Contains(metrics, `parsvd_model_wal_fsyncs{model="persist"}`) {
		t.Fatalf("metrics missing wal_fsyncs:\n%s", metrics)
	}

	s1.crash()
	if _, err := os.Stat(filepath.Join(dir, "persist.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("crash simulation wrote a checkpoint; the test proves nothing: %v", err)
	}

	want := referenceSpectrum(t, spec, batches)

	// Boot 1: spec + WAL replay must reconstruct the exact state.
	s2 := bootCrashable(t, cfg)
	sp2, err := s2.c.Spectrum(ctx, "persist")
	if err != nil {
		t.Fatal(err)
	}
	wantBitIdentical(t, sp2.Singular, want, "first recovery")
	getJSON(t, s2.ts.URL+"/healthz", &h)
	if len(h.Health) != 1 || h.Health[0].ReplayedOnBoot != 3 {
		t.Fatalf("post-recovery health %+v, want replayed_on_boot=3", h.Health)
	}
	metrics = getBody(t, s2.ts.URL+"/metrics")
	if !strings.Contains(metrics, `parsvd_model_wal_replayed_records{model="persist"} 3`) {
		t.Fatalf("metrics missing wal_replayed_records=3:\n%s", metrics)
	}
	if !strings.Contains(metrics, `parsvd_model_recovery_seconds{model="persist"}`) {
		t.Fatalf("metrics missing recovery_seconds:\n%s", metrics)
	}
	s2.crash()

	// Boot 2 on the same untouched dir: replay is idempotent.
	s3 := bootCrashable(t, cfg)
	sp3, err := s3.c.Spectrum(ctx, "persist")
	if err != nil {
		t.Fatal(err)
	}
	wantBitIdentical(t, sp3.Singular, sp2.Singular, "second recovery")

	// The recovered model keeps streaming and keeps logging.
	if _, err := s3.c.Push(ctx, "persist", testMatrix(16, 4)); err != nil {
		t.Fatal(err)
	}
	s3.ts.Close()
	if err := s3.srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALTornTailNeverFailsBoot: a crash mid-append leaves a torn final
// frame; boot must truncate it and recover every complete record instead
// of refusing to start.
func TestWALTornTailNeverFailsBoot(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{CheckpointDir: dir, CheckpointInterval: time.Hour, Logf: func(string, ...any) {}}
	ctx := context.Background()
	spec := server.ModelSpec{Name: "torn", Modes: 2, ForgetFactor: 1}
	snaps := testMatrix(12, 8)
	batches := []*parsvd.Matrix{snaps.SliceCols(0, 4), snaps.SliceCols(4, 8)}

	s1 := bootCrashable(t, cfg)
	if _, err := s1.c.CreateModel(ctx, spec); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := s1.c.Push(ctx, "torn", b); err != nil {
			t.Fatal(err)
		}
	}
	s1.crash()

	// A torn append: half a frame header at the end of the newest segment.
	seg := newestSegment(t, dir, "torn")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := bootCrashable(t, cfg)
	defer s2.crash()
	sp, err := s2.c.Spectrum(ctx, "torn")
	if err != nil {
		t.Fatalf("torn tail failed the boot: %v", err)
	}
	wantBitIdentical(t, sp.Singular, referenceSpectrum(t, spec, batches), "torn-tail recovery")
	metrics := getBody(t, s2.ts.URL+"/metrics")
	if !strings.Contains(metrics, `parsvd_model_wal_truncated_bytes{model="torn"} 3`) {
		t.Fatalf("metrics missing wal_truncated_bytes=3:\n%s", metrics)
	}
}

// TestWALMidLogCorruptionQuarantinesModel: a bit flip inside a committed
// record is unrecoverable silent corruption — the model must be
// quarantined (all state renamed .bad), not served from damaged data, and
// the rest of the server must boot.
func TestWALMidLogCorruptionQuarantinesModel(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{CheckpointDir: dir, CheckpointInterval: time.Hour, Logf: func(string, ...any) {}}
	ctx := context.Background()

	s1 := bootCrashable(t, cfg)
	for _, name := range []string{"victim", "bystander"} {
		if _, err := s1.c.CreateModel(ctx, server.ModelSpec{Name: name, Modes: 2}); err != nil {
			t.Fatal(err)
		}
		if _, err := s1.c.Push(ctx, name, testMatrix(12, 4)); err != nil {
			t.Fatal(err)
		}
		if _, err := s1.c.Push(ctx, name, testMatrix(12, 4)); err != nil {
			t.Fatal(err)
		}
	}
	s1.crash()

	// Flip one byte inside the first record's body.
	seg := newestSegment(t, dir, "victim")
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[20] ^= 0x40
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := bootCrashable(t, cfg)
	defer s2.crash()
	models, err := s2.c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Spec.Name != "bystander" {
		t.Fatalf("restored models %+v, want just [bystander]", models)
	}
	if _, err := os.Stat(filepath.Join(dir, "victim.wal.bad")); err != nil {
		t.Fatalf("corrupt wal not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "victim.spec.json.bad")); err != nil {
		t.Fatalf("spec of quarantined model not renamed: %v", err)
	}
}

// TestCheckpointRotatesWAL: a successful checkpoint is the truncation
// barrier — the records it covers rotate out, and recovery afterwards
// still reproduces the full acked history (checkpoint base + remaining
// records).
func TestCheckpointRotatesWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{CheckpointDir: dir, CheckpointInterval: 20 * time.Millisecond, Logf: func(string, ...any) {}}
	ctx := context.Background()
	spec := server.ModelSpec{Name: "rotate", Modes: 3, ForgetFactor: 0.95}
	snaps := testMatrix(16, 16)
	batches := []*parsvd.Matrix{snaps.SliceCols(0, 8), snaps.SliceCols(8, 12), snaps.SliceCols(12, 16)}

	s1 := bootCrashable(t, cfg)
	if _, err := s1.c.CreateModel(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.c.Push(ctx, "rotate", batches[0]); err != nil {
		t.Fatal(err)
	}
	// Wait for the periodic checkpoint to land and rotate the record out.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var h server.HealthResponse
		getJSON(t, s1.ts.URL+"/healthz", &h)
		if len(h.Health) == 1 && !h.Health[0].Dirty && h.Health[0].WALRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpoint never rotated the WAL: %+v", h.Health)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Two more acked pushes after the barrier, then crash.
	if _, err := s1.c.Push(ctx, "rotate", batches[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.c.Push(ctx, "rotate", batches[2]); err != nil {
		t.Fatal(err)
	}
	s1.crash()

	s2 := bootCrashable(t, cfg)
	defer s2.crash()
	sp, err := s2.c.Spectrum(ctx, "rotate")
	if err != nil {
		t.Fatal(err)
	}
	wantBitIdentical(t, sp.Singular, referenceSpectrum(t, spec, batches), "post-rotation recovery")
}

// TestSpecMakesCreateDurable: a model created and never pushed to must
// still exist after a crash — the spec file alone rebuilds it.
func TestSpecMakesCreateDurable(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{CheckpointDir: dir, CheckpointInterval: time.Hour, Logf: func(string, ...any) {}}
	ctx := context.Background()

	s1 := bootCrashable(t, cfg)
	if _, err := s1.c.CreateModel(ctx, server.ModelSpec{Name: "empty", Modes: 4, ForgetFactor: 0.8}); err != nil {
		t.Fatal(err)
	}
	s1.crash()

	s2 := bootCrashable(t, cfg)
	defer s2.crash()
	info, err := s2.c.Model(ctx, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if info.Spec.Modes != 4 || info.Spec.ForgetFactor != 0.8 || info.Stats.Snapshots != 0 {
		t.Fatalf("restored empty model %+v, want modes=4 ff=0.8 snapshots=0", info)
	}
	// And it accepts its first push.
	if _, err := s2.c.Push(ctx, "empty", testMatrix(8, 4)); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteRemovesDurableState: delete must take the spec and WAL with
// it, or the model resurrects on the next boot.
func TestDeleteRemovesDurableState(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{CheckpointDir: dir, CheckpointInterval: time.Hour, Logf: func(string, ...any) {}}
	ctx := context.Background()

	s1 := bootCrashable(t, cfg)
	if _, err := s1.c.CreateModel(ctx, server.ModelSpec{Name: "gone", Modes: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.c.Push(ctx, "gone", testMatrix(8, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s1.c.DeleteModel(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	for _, leftover := range []string{"gone.spec.json", "gone.wal"} {
		if _, err := os.Stat(filepath.Join(dir, leftover)); !os.IsNotExist(err) {
			t.Fatalf("%s survives model deletion: %v", leftover, err)
		}
	}
	s1.crash()

	s2 := bootCrashable(t, cfg)
	defer s2.crash()
	models, err := s2.c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 0 {
		t.Fatalf("deleted model resurrected: %+v", models)
	}
}

// TestDisableWAL reverts to checkpoint-only persistence: no WAL dir is
// created and /healthz reports the model as un-logged.
func TestDisableWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{CheckpointDir: dir, CheckpointInterval: time.Hour, DisableWAL: true, Logf: func(string, ...any) {}}
	ctx := context.Background()

	s := bootCrashable(t, cfg)
	if _, err := s.c.CreateModel(ctx, server.ModelSpec{Name: "plain", Modes: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.c.Push(ctx, "plain", testMatrix(8, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "plain.wal")); !os.IsNotExist(err) {
		t.Fatalf("DisableWAL still created a WAL dir: %v", err)
	}
	var h server.HealthResponse
	getJSON(t, s.ts.URL+"/healthz", &h)
	if len(h.Health) != 1 || h.Health[0].WAL {
		t.Fatalf("health %+v, want wal=false", h.Health)
	}
	s.ts.Close()
	if err := s.srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFsyncPolicies: every policy accepts pushes and survives (at least)
// an orderly crash; an unknown policy is refused at construction.
func TestFsyncPolicies(t *testing.T) {
	ctx := context.Background()
	for _, policy := range []server.FsyncPolicy{server.FsyncAlways, server.FsyncInterval, server.FsyncNever} {
		dir := t.TempDir()
		cfg := server.Config{
			CheckpointDir: dir, CheckpointInterval: time.Hour,
			Fsync: policy, FsyncInterval: 5 * time.Millisecond,
			Logf: func(string, ...any) {},
		}
		s1 := bootCrashable(t, cfg)
		spec := server.ModelSpec{Name: "m", Modes: 2}
		if _, err := s1.c.CreateModel(ctx, spec); err != nil {
			t.Fatal(err)
		}
		batch := testMatrix(10, 6)
		if _, err := s1.c.Push(ctx, "m", batch); err != nil {
			t.Fatalf("policy %s: %v", policy, err)
		}
		s1.crash()

		s2 := bootCrashable(t, cfg)
		sp, err := s2.c.Spectrum(ctx, "m")
		if err != nil {
			t.Fatalf("policy %s: recovery: %v", policy, err)
		}
		wantBitIdentical(t, sp.Singular, referenceSpectrum(t, spec, []*parsvd.Matrix{batch}),
			"policy "+string(policy))
		s2.crash()
	}
	if _, err := server.New(server.Config{CheckpointDir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("bogus fsync policy accepted")
	}
}
