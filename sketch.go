package parsvd

// Sketched push (Li–Kluger–Tygert, arXiv 1612.08709; RSVDPACK, arXiv
// 1502.05366): the sketch, not the data, crosses the wire. An M×B batch A
// is compressed into the factor pair (Q, S) with A ≈ Q·S — Q an M×L
// orthonormal range basis from internal/rla, S = QᵀA the L×B projection —
// and only L·(M+B) floats travel instead of M·B. Engines that understand
// the pair (the Distributed backend's worker fleet) reconstruct on their
// side of the wire; the in-process backends reconstruct here and push the
// product, which still pays off when the sketch itself was produced
// remotely (the serving layer's sketched ingest).

import (
	"errors"
	"fmt"
	"math"

	"goparsvd/internal/mat"
	"goparsvd/internal/rla"
)

// sketchReceiver is the optional engine extension for backends that can
// ship the compressed factor pair instead of reconstructed rows. Engines
// without it get the facade-side reconstruction through plain push.
type sketchReceiver interface {
	pushSketch(q, s *mat.Dense) error
}

// Sketch compresses an M×B snapshot batch into the factor pair (q, s)
// with batch ≈ q·s — the same compression WithSketchedPush applies before
// every push, exposed so a producer can sketch on its own machine and
// ship only the pair (PushSketch, or the serving API's sketched push).
// cfg follows SketchConfig semantics: Tol > 0 grows the rank adaptively
// until the estimated residual falls below Tol·‖batch‖_F, Tol == 0 uses a
// fixed width of MaxRank. An optional RLA argument tunes the sketch.
// A nil pair with a nil error means the sketch would not compress this
// batch (L·(M+B) ≥ M·B): push it raw instead.
func Sketch(batch *Matrix, cfg SketchConfig, opts ...RLA) (q, s *Matrix, err error) {
	if len(opts) > 1 {
		return nil, nil, fmt.Errorf("parsvd: Sketch takes at most one RLA, got %d", len(opts))
	}
	var ro RLA
	if len(opts) == 1 {
		if err := opts[0].Validate(); err != nil {
			return nil, nil, fmt.Errorf("parsvd: Sketch: %w", err)
		}
		ro = opts[0]
	}
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if err := checkBatch(batch, 0); err != nil {
		return nil, nil, err
	}
	return sketchBatch(batch, cfg, ro)
}

// sketchBatch runs the validated sketch: cfg has passed
// SketchConfig.validate and batch has passed checkBatch.
func sketchBatch(batch *Matrix, cfg SketchConfig, ro RLA) (*Matrix, *Matrix, error) {
	maxRank := cfg.MaxRank
	if maxRank == 0 {
		// Adaptive with no explicit cap: saturate only at the batch shape.
		maxRank = batch.Rows()
		if c := batch.Cols(); c < maxRank {
			maxRank = c
		}
	}
	block := cfg.Block
	if block == 0 {
		block = 8
	}
	tol := cfg.Tol
	if tol > 0 {
		// The configured tolerance is relative to the batch; rla wants the
		// absolute spectral bound.
		tol *= batch.FroNorm()
		if tol == 0 {
			// A zero batch: any one-column basis nominally satisfies tol=0,
			// but rla requires tol > 0; ship it raw (it is all zeros).
			return nil, nil, nil
		}
	}
	q, s, err := rla.SketchFactors(batch, tol, block, maxRank, ro)
	if err != nil {
		return nil, nil, fmt.Errorf("parsvd: sketch: %w", err)
	}
	return q, s, nil
}

// checkFactorPair validates a sketched pair against the rows seen so far,
// mirroring checkBatch for raw pushes: nothing on the public path panics.
func checkFactorPair(q, s *Matrix, rows int) error {
	if q == nil || q.IsEmpty() || s == nil || s.IsEmpty() {
		return errors.New("parsvd: empty sketch factor pair")
	}
	if q.Cols() != s.Rows() {
		return fmt.Errorf("parsvd: sketch factor pair has mismatched inner dimension: Q is %dx%d, S is %dx%d",
			q.Rows(), q.Cols(), s.Rows(), s.Cols())
	}
	if rows != 0 && q.Rows() != rows {
		return fmt.Errorf("parsvd: sketch factor Q has %d rows, want %d", q.Rows(), rows)
	}
	for _, m := range []*Matrix{q, s} {
		for _, v := range m.RawData() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("parsvd: sketch factor pair contains a non-finite value (%g)", v)
			}
		}
	}
	return nil
}

// PushSketch ingests one snapshot batch in compressed factor form: q
// (M×L) times s (L×B) stands in for the M×B batch it was sketched from.
// Pairs come from Sketch on a producer machine, from the serving layer's
// sketched ingest, or from a WAL replay of a sketched push. PushSketch
// works on any SVD regardless of WithSketchedPush: the Distributed
// backend ships the pair over the wire and reconstructs rank-local row
// blocks on the workers; the in-process backends reconstruct q·s here
// and push the product. Replaying the same pair reproduces the same
// update bit-exactly — reconstruction is deterministic.
func (s *SVD) PushSketch(q, sk *Matrix) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("parsvd: PushSketch on closed SVD")
	}
	return s.pushSketchLocked(q, sk)
}

// pushSketchLocked forwards a validated factor pair to the engine —
// compressed when it understands the form, reconstructed otherwise — and
// maintains the ingest and wire counters. Called with s.mu held.
func (s *SVD) pushSketchLocked(q, sk *Matrix) error {
	if err := checkFactorPair(q, sk, s.rows); err != nil {
		return err
	}
	m, l, bcols := q.Rows(), q.Cols(), sk.Cols()
	if sr, ok := s.eng.(sketchReceiver); ok {
		if err := sr.pushSketch(q, sk); err != nil {
			return err
		}
		// The scatter ships each rank its row block of Q (M·L floats in
		// total) and replicates S to every rank.
		s.wireBytes += 8 * int64(m*l+l*bcols*s.cfg.ranks)
	} else {
		if err := s.eng.push(Mul(q, sk)); err != nil {
			return err
		}
		// One in-process copy of the pair stands in for the raw batch.
		s.wireBytes += 8 * int64(l*(m+bcols))
	}
	s.pushedBytes += 8 * int64(m*bcols)
	s.sketchedPushes++
	if s.rows == 0 {
		s.rows = m
	}
	s.snapshots += bcols
	s.updates++
	return nil
}
