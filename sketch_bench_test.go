package parsvd_test

import (
	"testing"

	parsvd "goparsvd"
	"goparsvd/internal/testutil"
)

// BenchmarkSketchedPushWire streams a low-rank workload through
// WithSketchedPush and reports the ingest traffic alongside time:
// wire-B/push is what crosses the wire per push as a compressed (Q, S)
// factor pair, raw-B/push the 8·M·B a raw push would have shipped. The
// bench-trajectory gate records wire-B/push in BENCH_baseline.json and
// fails on any increase — compression geometry is deterministic, so a
// bigger number is a real traffic regression, not noise.
func BenchmarkSketchedPushWire(b *testing.B) {
	const rows, snaps, batch, rank = 512, 128, 32, 8
	data, _ := testutil.RandomLowRank(rows, snaps, rank, 1e-10, testutil.NewRand(17))
	b.ReportAllocs()
	var st parsvd.Stats
	for i := 0; i < b.N; i++ {
		svd, err := parsvd.New(
			parsvd.WithModes(rank),
			parsvd.WithSketchedPush(parsvd.SketchConfig{MaxRank: rank}),
		)
		if err != nil {
			b.Fatal(err)
		}
		for off := 0; off < snaps; off += batch {
			if err := svd.Push(data.SliceCols(off, off+batch)); err != nil {
				b.Fatal(err)
			}
		}
		st = svd.Stats()
		if err := svd.Close(); err != nil {
			b.Fatal(err)
		}
	}
	pushes := float64(snaps / batch)
	b.ReportMetric(float64(st.WireBytes)/pushes, "wire-B/push")
	b.ReportMetric(float64(st.PushedBytes)/pushes, "raw-B/push")
}
