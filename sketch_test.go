package parsvd_test

// Sketched-push conformance and safety: WithSketchedPush must reproduce
// the unsketched decomposition within the documented tolerance across
// every Source flavor and every backend, be exact (to roundoff) when the
// sketch width covers the batch rank, maintain the cross-backend traffic
// counters (PushedBytes / WireBytes / SketchedPushes) consistently, and
// never panic on bad RLA or Sketch options. TestSketchSmoke is the CI
// sketch-smoke gate (make sketch-smoke): a 4-rank TCP fleet fed sketched
// pushes must match the unsketched serial reference AND measure a >= 4x
// wire-bytes reduction.

import (
	"context"
	"io"
	"math"
	"testing"

	parsvd "goparsvd"

	"goparsvd/internal/testutil"
)

// sketchAdaptiveCfg is the adaptive configuration the conformance runs
// use: rank grows until the residual estimate falls below 1e-6·‖batch‖_F.
var sketchAdaptiveCfg = parsvd.SketchConfig{Tol: 1e-6}

// sketchAdaptiveTol is the acceptance bound for the adaptive runs: the
// per-batch compression error is ~Tol·‖batch‖_F (‖batch‖_F = O(1) here),
// accumulated over a handful of batches, with generous headroom for the
// probabilistic residual estimate.
const sketchAdaptiveTol = 1e-4

// sketchStreams mirrors confStreams with 12-column batches, a geometry
// where the adaptive sketch of the shared rank-6 matrix actually
// compresses (L·(M+B) < M·B for L up to 10).
var sketchStreams = []struct {
	name   string
	source func(t *testing.T) parsvd.Source
}{
	{"FromMatrix", func(t *testing.T) parsvd.Source {
		return parsvd.FromMatrix(confMatrix(), 12)
	}},
	{"FromBatches", func(t *testing.T) parsvd.Source {
		a, pos := confMatrix(), 0
		return parsvd.FromBatches(func() (*parsvd.Matrix, error) {
			if pos >= a.Cols() {
				return nil, io.EOF
			}
			end := pos + 12
			if end > a.Cols() {
				end = a.Cols()
			}
			b := a.SliceCols(pos, end)
			pos = end
			return b, nil
		})
	}},
	{"FromWorkload", func(t *testing.T) parsvd.Source {
		src, err := parsvd.FromWorkload(confWorkload(), 2)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}},
}

// newSketchSVD builds one backend's SVD with the conformance options,
// optionally sketched.
func newSketchSVD(t *testing.T, backend parsvd.Backend, ranks int, sketch *parsvd.SketchConfig) *parsvd.SVD {
	t.Helper()
	opts := []parsvd.Option{
		parsvd.WithModes(6),
		parsvd.WithForgetFactor(0.95),
		parsvd.WithInitRank(16),
		parsvd.WithBackend(backend),
	}
	if backend != parsvd.Serial {
		opts = append(opts, parsvd.WithRanks(ranks))
	}
	if sketch != nil {
		opts = append(opts, parsvd.WithSketchedPush(*sketch))
	}
	svd, err := parsvd.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svd.Close() })
	return svd
}

// TestSketchedFitMatchesUnsketched: every stream flavor through every
// backend, sketched (adaptive rank, Tol 1e-6) against unsketched, spectra
// within the documented tolerance. Batches the sketch cannot compress
// fall through to the raw path — still within tolerance trivially — but
// the FromMatrix geometry is chosen so sketching demonstrably happens.
func TestSketchedFitMatchesUnsketched(t *testing.T) {
	skipWithoutFleet(t)
	for _, stream := range sketchStreams {
		t.Run(stream.name, func(t *testing.T) {
			for _, b := range confBackends {
				t.Run(b.name, func(t *testing.T) {
					plain := newSketchSVD(t, b.backend, b.ranks, nil)
					want, err := plain.Fit(context.Background(), stream.source(t))
					if err != nil {
						t.Fatal(err)
					}
					cfg := sketchAdaptiveCfg
					sketched := newSketchSVD(t, b.backend, b.ranks, &cfg)
					got, err := sketched.Fit(context.Background(), stream.source(t))
					if err != nil {
						t.Fatal(err)
					}
					if got.Snapshots != want.Snapshots {
						t.Fatalf("sketched snapshots = %d, want %d", got.Snapshots, want.Snapshots)
					}
					if d := maxSpectrumDiff(t, want.Singular, got.Singular); d > sketchAdaptiveTol {
						t.Errorf("sketched spectrum deviates from unsketched by %g, want <= %g", d, sketchAdaptiveTol)
					}
					st := sketched.Stats()
					if st.PushedBytes == 0 || st.WireBytes == 0 {
						t.Fatalf("sketched run reports no traffic: %+v", st)
					}
					if stream.name == "FromMatrix" {
						// The chosen geometry compresses: the sketch path must
						// actually have run and saved wire bytes.
						if st.SketchedPushes == 0 {
							t.Fatal("no push traveled sketched on a compressible geometry")
						}
						if st.WireBytes >= st.PushedBytes {
							t.Fatalf("sketched wire bytes %d not below logical pushed bytes %d",
								st.WireBytes, st.PushedBytes)
						}
					}
				})
			}
		})
	}
}

// TestSketchedPushExactWhenRankCovered: when the fixed sketch width
// MaxRank is at least the effective batch rank, the sketch captures the
// whole range and the decomposition matches the unsketched run to
// roundoff, on every backend.
func TestSketchedPushExactWhenRankCovered(t *testing.T) {
	skipWithoutFleet(t)
	// Effectively exactly rank 4 (noise at 1e-13 keeps QR comfortably
	// non-degenerate); MaxRank 8 >= 4 covers it.
	a, _ := testutil.RandomLowRank(64, 48, 4, 1e-13, testutil.NewRand(7))
	cfg := parsvd.SketchConfig{MaxRank: 8}
	for _, b := range confBackends {
		t.Run(b.name, func(t *testing.T) {
			newOpts := func(sketch bool) []parsvd.Option {
				opts := []parsvd.Option{
					parsvd.WithModes(4),
					parsvd.WithInitRank(8),
					parsvd.WithBackend(b.backend),
				}
				if b.backend != parsvd.Serial {
					opts = append(opts, parsvd.WithRanks(b.ranks))
				}
				if sketch {
					opts = append(opts, parsvd.WithSketchedPush(cfg))
				}
				return opts
			}
			plain, err := parsvd.New(newOpts(false)...)
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			want, err := plain.Fit(context.Background(), parsvd.FromMatrix(a, 16))
			if err != nil {
				t.Fatal(err)
			}
			sketched, err := parsvd.New(newOpts(true)...)
			if err != nil {
				t.Fatal(err)
			}
			defer sketched.Close()
			got, err := sketched.Fit(context.Background(), parsvd.FromMatrix(a, 16))
			if err != nil {
				t.Fatal(err)
			}
			if st := sketched.Stats(); st.SketchedPushes != 3 {
				t.Fatalf("sketched pushes = %d, want all 3 batches sketched", st.SketchedPushes)
			}
			if d := maxSpectrumDiff(t, want.Singular, got.Singular); d > 1e-9 {
				t.Errorf("rank-covered sketch deviates by %g, want <= 1e-9 (roundoff)", d)
			}
		})
	}
}

// TestSketchTrafficCountersAcrossBackends (cross-backend Stats
// consistency): PushedBytes always counts 8·M·B per push, WireBytes
// equals it for raw pushes and the documented compressed size for
// sketched ones, on Serial, Parallel and Distributed alike.
func TestSketchTrafficCountersAcrossBackends(t *testing.T) {
	skipWithoutFleet(t)
	const m, bcols = 64, 16
	a, _ := testutil.RandomLowRank(m, 2*bcols, 4, 1e-10, testutil.NewRand(11))
	q, s, err := parsvd.Sketch(a.SliceCols(bcols, 2*bcols), parsvd.SketchConfig{MaxRank: 6})
	if err != nil {
		t.Fatal(err)
	}
	if q == nil {
		t.Fatal("sketch of a compressible batch fell back to raw")
	}
	l := q.Cols()
	for _, b := range confBackends {
		t.Run(b.name, func(t *testing.T) {
			svd := newSketchSVD(t, b.backend, b.ranks, nil)
			st := svd.Stats()
			if st.PushedBytes != 0 || st.WireBytes != 0 || st.SketchedPushes != 0 {
				t.Fatalf("fresh SVD has nonzero traffic counters: %+v", st)
			}
			if err := svd.Push(a.SliceCols(0, bcols)); err != nil {
				t.Fatal(err)
			}
			raw := int64(8 * m * bcols)
			st = svd.Stats()
			if st.PushedBytes != raw || st.WireBytes != raw || st.SketchedPushes != 0 {
				t.Fatalf("after raw push: pushed=%d wire=%d sketched=%d, want %d/%d/0",
					st.PushedBytes, st.WireBytes, st.SketchedPushes, raw, raw)
			}
			if err := svd.PushSketch(q, s); err != nil {
				t.Fatal(err)
			}
			// The documented wire formulas: in-process engines receive one
			// copy of the pair; the distributed scatter ships each rank its
			// row block of Q plus a full replica of S.
			wantWire := raw + 8*int64(l*(m+bcols))
			if b.backend == parsvd.Distributed {
				wantWire = raw + 8*int64(m*l+l*bcols*b.ranks)
			}
			st = svd.Stats()
			if st.PushedBytes != 2*raw || st.WireBytes != wantWire || st.SketchedPushes != 1 {
				t.Fatalf("after sketched push: pushed=%d wire=%d sketched=%d, want %d/%d/1",
					st.PushedBytes, st.WireBytes, st.SketchedPushes, 2*raw, wantWire)
			}
			if st.Snapshots != 2*bcols {
				t.Fatalf("snapshots = %d, want %d", st.Snapshots, 2*bcols)
			}
		})
	}
}

// TestSketchOptionsNeverPanic (the panic-free contract): every bad RLA or
// Sketch configuration reachable from the public surface is a returned
// error, never a panic — including the internal/rla argument checks that
// used to panic.
func TestSketchOptionsNeverPanic(t *testing.T) {
	batch := confMatrix()
	check := func(name string, f func() error) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panicked: %v", r)
				}
			}()
			if err := f(); err == nil {
				t.Fatal("bad configuration accepted without error")
			}
		})
	}
	newErr := func(opts ...parsvd.Option) func() error {
		return func() error { _, err := parsvd.New(opts...); return err }
	}
	check("negative-tol", newErr(parsvd.WithSketchedPush(parsvd.SketchConfig{Tol: -1})))
	check("nan-tol", newErr(parsvd.WithSketchedPush(parsvd.SketchConfig{Tol: math.NaN()})))
	check("negative-maxrank", newErr(parsvd.WithSketchedPush(parsvd.SketchConfig{MaxRank: -3})))
	check("negative-block", newErr(parsvd.WithSketchedPush(parsvd.SketchConfig{Tol: 1e-3, Block: -1})))
	check("two-sketch-configs", newErr(parsvd.WithSketchedPush(parsvd.SketchConfig{MaxRank: 4}, parsvd.SketchConfig{MaxRank: 8})))
	check("negative-oversample", newErr(parsvd.WithLowRank(parsvd.RLA{Oversample: -1})))
	check("negative-power-iters", newErr(parsvd.WithLowRank(parsvd.RLA{PowerIters: -2})))
	check("lowrank-and-sketch-bad-rla", newErr(
		parsvd.WithSketchedPush(), parsvd.WithLowRank(parsvd.RLA{Oversample: -1})))
	check("standalone-sketch-zero-config", func() error {
		_, _, err := parsvd.Sketch(batch, parsvd.SketchConfig{})
		return err
	})
	check("standalone-sketch-nil-batch", func() error {
		_, _, err := parsvd.Sketch(nil, parsvd.SketchConfig{MaxRank: 4})
		return err
	})
	check("standalone-sketch-bad-rla", func() error {
		_, _, err := parsvd.Sketch(batch, parsvd.SketchConfig{MaxRank: 4}, parsvd.RLA{Oversample: -1})
		return err
	})
	check("push-sketch-nil-pair", func() error {
		svd, err := parsvd.New(parsvd.WithModes(4))
		if err != nil {
			return err
		}
		defer svd.Close()
		return svd.PushSketch(nil, nil)
	})
	check("push-sketch-mismatched-inner-dim", func() error {
		svd, err := parsvd.New(parsvd.WithModes(4))
		if err != nil {
			return err
		}
		defer svd.Close()
		q, s, serr := parsvd.Sketch(batch, parsvd.SketchConfig{MaxRank: 6})
		if serr != nil || q == nil {
			t.Fatalf("sketch setup failed: %v", serr)
		}
		return svd.PushSketch(q, s.SliceRows(0, s.Rows()-1))
	})
	// A sketch-configured SVD stays usable: the bad-path probes above must
	// not have corrupted anything global, and a good configuration works.
	svd, err := parsvd.New(parsvd.WithModes(6), parsvd.WithSketchedPush())
	if err != nil {
		t.Fatal(err)
	}
	defer svd.Close()
	if err := svd.Push(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := svd.Result(); err != nil {
		t.Fatal(err)
	}
}

// TestSketchSmoke is the CI sketch-smoke gate (make sketch-smoke): a
// 4-rank TCP worker fleet fed through WithSketchedPush must match the
// unsketched serial reference within the adaptive tolerance while
// measuring at least a 4x wire-bytes reduction against the logical
// snapshot volume.
func TestSketchSmoke(t *testing.T) {
	skipWithoutFleet(t)
	const (
		ranks = 4
		rows  = 256 * ranks
		snaps = 192
		batch = 64
	)
	a, _ := testutil.RandomLowRank(rows, snaps, 6, 1e-10, testutil.NewRand(99))
	opts := []parsvd.Option{
		parsvd.WithModes(6),
		parsvd.WithForgetFactor(0.95),
		parsvd.WithInitRank(16),
	}
	ser, err := parsvd.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer ser.Close()
	want, err := ser.Fit(context.Background(), parsvd.FromMatrix(a, batch))
	if err != nil {
		t.Fatal(err)
	}

	dist, err := parsvd.New(append(opts,
		parsvd.WithBackend(parsvd.Distributed),
		parsvd.WithRanks(ranks),
		parsvd.WithSketchedPush(parsvd.SketchConfig{Tol: 1e-6, MaxRank: 8}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	defer dist.Close()
	got, err := dist.Fit(context.Background(), parsvd.FromMatrix(a, batch))
	if err != nil {
		t.Fatal(err)
	}

	if d := maxSpectrumDiff(t, want.Singular, got.Singular); d > sketchAdaptiveTol {
		t.Errorf("sketched 4-rank spectrum deviates from unsketched serial by %g, want <= %g",
			d, sketchAdaptiveTol)
	}
	st := dist.Stats()
	if st.Rows != rows || st.Snapshots != snaps {
		t.Fatalf("sketched distributed stats incomplete: %+v", st)
	}
	if st.SketchedPushes != int64(snaps/batch) {
		t.Fatalf("sketched pushes = %d, want all %d batches sketched", st.SketchedPushes, snaps/batch)
	}
	if st.WireBytes*4 > st.PushedBytes {
		t.Fatalf("wire bytes %d not >= 4x below the logical %d pushed bytes (ratio %.2f)",
			st.WireBytes, st.PushedBytes, float64(st.PushedBytes)/float64(st.WireBytes))
	}
	t.Logf("sketch-smoke: %d snapshots, %d sketched pushes, wire %d vs logical %d bytes (%.1fx reduction), max deviation %g",
		st.Snapshots, st.SketchedPushes, st.WireBytes, st.PushedBytes,
		float64(st.PushedBytes)/float64(st.WireBytes),
		maxSpectrumDiff(t, want.Singular, got.Singular))
}
