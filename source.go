package parsvd

import (
	"context"
	"errors"
	"fmt"
	"io"

	"goparsvd/internal/ncio"
	"goparsvd/internal/scaling"
)

// Source yields the snapshot matrix batch by batch: columns are
// snapshots, rows are degrees of freedom, and every batch must have the
// same row count. Fit drains a Source to completion; a Source that also
// implements io.Closer is closed when Fit returns.
type Source interface {
	// Next returns the next batch, or (nil, io.EOF) once the source is
	// drained. The returned matrix is owned by the engine until the next
	// Next call.
	Next(ctx context.Context) (*Matrix, error)
}

// Workload is the deterministic streaming benchmark workload shared by
// every execution mode (an analytic Burgers snapshot matrix): two runs
// with the same parameters see bit-identical inputs, which is what lets
// the Distributed backend be verified bit-for-bit against the in-process
// one.
type Workload = scaling.StreamWorkload

// DefaultWorkload is a laptop-scale Workload configuration.
func DefaultWorkload() Workload { return scaling.DefaultStreamWorkload() }

// FromMatrix serves an in-memory snapshot matrix in column batches of the
// given width (the last batch may be narrower). Like bytes.NewReader it
// never fails at construction; an empty matrix or a batch width < 1 is
// reported by the first Next call, i.e. as a Fit error.
func FromMatrix(a *Matrix, batch int) Source {
	return &matrixSource{a: a, batch: batch}
}

type matrixSource struct {
	a     *Matrix
	batch int
	pos   int
}

func (s *matrixSource) Next(ctx context.Context) (*Matrix, error) {
	if s.a == nil || s.a.IsEmpty() {
		return nil, errors.New("parsvd: FromMatrix with an empty matrix")
	}
	if s.batch < 1 {
		return nil, fmt.Errorf("parsvd: FromMatrix batch width %d < 1", s.batch)
	}
	if s.pos >= s.a.Cols() {
		return nil, io.EOF
	}
	end := s.pos + s.batch
	if end > s.a.Cols() {
		end = s.a.Cols()
	}
	b := s.a.SliceCols(s.pos, end)
	s.pos = end
	return b, nil
}

// FromBatches adapts a generator function into a Source: next is called
// once per batch and signals exhaustion by returning (nil, io.EOF) — or
// simply (nil, nil), for generators without an error path.
func FromBatches(next func() (*Matrix, error)) Source {
	return &funcSource{next: next}
}

type funcSource struct {
	next func() (*Matrix, error)
	done bool
}

func (s *funcSource) Next(ctx context.Context) (*Matrix, error) {
	if s.next == nil {
		return nil, errors.New("parsvd: FromBatches with a nil generator")
	}
	if s.done {
		return nil, io.EOF
	}
	b, err := s.next()
	if err != nil {
		s.done = true
		return nil, err
	}
	if b == nil {
		s.done = true
		return nil, io.EOF
	}
	return b, nil
}

// FromNetCDF streams a variable out of a goparsvd self-describing
// container file (the GNC format written by internal/ncio and the gnc
// package). The variable's first dimension is treated as the snapshot
// (time) axis and the remaining dimensions are flattened into rows, so an
// (time × lat × lon) field becomes a (lat·lon × time) snapshot matrix
// served in time batches of the given width. The returned Source holds
// the file open; Fit closes it, or call Close directly.
func FromNetCDF(path, variable string, batch int) (Source, error) {
	if batch < 1 {
		return nil, fmt.Errorf("parsvd: FromNetCDF batch width %d < 1", batch)
	}
	f, err := ncio.Open(path)
	if err != nil {
		return nil, fmt.Errorf("parsvd: FromNetCDF: %w", err)
	}
	v, ok := f.Var(variable)
	if !ok {
		f.Close()
		return nil, fmt.Errorf("parsvd: FromNetCDF: no variable %q in %s", variable, path)
	}
	dims := v.Dims
	if len(dims) < 2 {
		f.Close()
		return nil, fmt.Errorf("parsvd: FromNetCDF: variable %q needs a time dimension plus at least one space dimension, has %d", variable, len(dims))
	}
	sizes := make([]int64, len(dims))
	rows := int64(1)
	for i, d := range dims {
		dim, ok := f.Dim(d)
		if !ok {
			f.Close()
			return nil, fmt.Errorf("parsvd: FromNetCDF: variable %q references unknown dimension %q", variable, d)
		}
		sizes[i] = dim.Size
		if i > 0 {
			rows *= dim.Size
		}
	}
	if sizes[0] < 1 || rows < 1 {
		f.Close()
		return nil, fmt.Errorf("parsvd: FromNetCDF: variable %q is empty", variable)
	}
	return &netcdfSource{
		f: f, variable: variable, batch: batch,
		steps: sizes[0], rows: rows, sizes: sizes,
	}, nil
}

type netcdfSource struct {
	f        *ncio.File
	variable string
	batch    int
	steps    int64 // length of the time axis
	rows     int64 // flattened space size
	sizes    []int64
	pos      int64
	closed   bool
}

func (s *netcdfSource) Next(ctx context.Context) (*Matrix, error) {
	if s.closed {
		return nil, errors.New("parsvd: FromNetCDF source is closed")
	}
	if s.pos >= s.steps {
		return nil, io.EOF
	}
	end := s.pos + int64(s.batch)
	if end > s.steps {
		end = s.steps
	}
	offsets := make([]int64, len(s.sizes))
	counts := make([]int64, len(s.sizes))
	offsets[0] = s.pos
	counts[0] = end - s.pos
	for i := 1; i < len(s.sizes); i++ {
		counts[i] = s.sizes[i]
	}
	raw, err := s.f.ReadSlab(s.variable, offsets, counts)
	if err != nil {
		return nil, fmt.Errorf("parsvd: FromNetCDF: %w", err)
	}
	// raw is time-major ([time][space]); the engine wants space rows and
	// time columns.
	rows, cols := int(s.rows), int(end-s.pos)
	out := NewMatrix(rows, cols)
	for t := 0; t < cols; t++ {
		base := t * rows
		for r := 0; r < rows; r++ {
			out.Set(r, t, raw[base+r])
		}
	}
	s.pos = end
	return out, nil
}

// Close releases the underlying file. Fit calls it automatically.
func (s *netcdfSource) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}

// FromWorkload serves the deterministic benchmark workload as a Source:
// an InitBatch-column seed batch followed by Batch-column streaming
// batches of the analytic Burgers snapshot matrix with RowsPerRank·ranks
// rows. All three backends consume the identical batches — the
// Distributed backend row-scatters them to its worker fleet over the
// wire — so one Source definition drives every execution mode on
// bit-identical data.
func FromWorkload(w Workload, ranks int) (Source, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("parsvd: FromWorkload ranks %d < 1", ranks)
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("parsvd: FromWorkload: %w", err)
	}
	return &workloadSource{w: w, ranks: ranks}, nil
}

type workloadSource struct {
	w     Workload
	ranks int
	pos   int
}

func (s *workloadSource) Next(ctx context.Context) (*Matrix, error) {
	if s.pos >= s.w.Snapshots {
		return nil, io.EOF
	}
	width := s.w.Batch
	if s.pos == 0 {
		width = s.w.InitBatch
	}
	end := s.pos + width
	if end > s.w.Snapshots {
		end = s.w.Snapshots
	}
	bc := s.w.BurgersConfig(s.ranks)
	b := bc.Block(0, bc.Nx, s.pos, end)
	s.pos = end
	return b, nil
}
