// Package spod is the public face of goparsvd's spectral proper
// orthogonal decomposition: coherent structures separated by frequency
// (Welch-style blocking, FFT in time, then a POD at every frequency bin),
// the spectral variant the paper's §2 motivates via the second author's
// PySPOD package. Plain POD mixes a travelling wave's phases into pairs
// of standing modes; SPOD recovers the wave and its period.
package spod

import (
	"goparsvd/internal/mat"
	ispod "goparsvd/internal/spod"
)

// Options configures an SPOD: NFFT is the block length, Overlap the
// inter-block overlap fraction, DT the snapshot spacing (sets the
// physical frequency axis), and K the modes retained per frequency.
type Options = ispod.Options

// Result holds per-frequency energies and modes; PeakFrequency locates
// the dominant bin.
type Result = ispod.Result

// ComplexModes are the complex-valued spatial modes at one frequency.
type ComplexModes = ispod.ComplexModes

// Compute runs the decomposition on a (space × time) snapshot matrix.
func Compute(a *mat.Dense, opts Options) *Result { return ispod.Compute(a, opts) }
