package parsvd_test

import (
	"bytes"
	"os"
	"testing"

	parsvd "goparsvd"
)

func cloneTestMatrix(rows, cols int) *parsvd.Matrix {
	m := parsvd.NewMatrix(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			m.Set(i, j, float64((i+1)*(j+2)%9)+0.5*float64(i))
		}
	}
	return m
}

// TestResultCloneIndependence: a Clone shares no storage with its source
// — mutating either side never shows through — and a nil Result clones
// to nil.
func TestResultCloneIndependence(t *testing.T) {
	svd, err := parsvd.New(parsvd.WithModes(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := svd.Push(cloneTestMatrix(12, 8)); err != nil {
		t.Fatal(err)
	}
	res, err := svd.Result()
	if err != nil {
		t.Fatal(err)
	}
	c := res.Clone()
	if c == res || c.Modes == res.Modes || &c.Singular[0] == &res.Singular[0] {
		t.Fatal("Clone returned aliased storage")
	}
	origMode, origSing := res.Modes.At(0, 0), res.Singular[0]
	c.Modes.Set(0, 0, origMode+100)
	c.Singular[0] = origSing + 100
	if res.Modes.At(0, 0) != origMode || res.Singular[0] != origSing {
		t.Fatal("mutating a Clone leaked into the source Result")
	}
	if c.Snapshots != res.Snapshots || c.Iterations != res.Iterations {
		t.Fatal("Clone dropped scalar fields")
	}
	if (*parsvd.Result)(nil).Clone() != nil {
		t.Fatal("nil Result must clone to nil")
	}
}

// TestStatsIntrospection: Stats reports configuration and ingest counters
// without gathering modes, and the counters survive a Save/Load round
// trip.
func TestStatsIntrospection(t *testing.T) {
	svd, err := parsvd.New(parsvd.WithModes(4), parsvd.WithForgetFactor(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if st := svd.Stats(); st.Backend != parsvd.Serial || st.K != 4 || st.Ranks != 1 ||
		st.Rows != 0 || st.Snapshots != 0 || st.Updates != 0 {
		t.Fatalf("fresh Stats = %+v, want serial K=4 with zero counters", st)
	}
	if err := svd.Push(cloneTestMatrix(16, 6)); err != nil {
		t.Fatal(err)
	}
	if err := svd.Push(cloneTestMatrix(16, 3)); err != nil {
		t.Fatal(err)
	}
	st := svd.Stats()
	if st.Rows != 16 || st.Snapshots != 9 || st.Updates != 2 {
		t.Fatalf("Stats after two pushes = %+v, want rows=16 snapshots=9 updates=2", st)
	}

	var buf bytes.Buffer
	if err := svd.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := parsvd.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rst := restored.Stats()
	if rst.Rows != 16 || rst.Snapshots != 9 || rst.K != 4 || rst.Backend != parsvd.Serial {
		t.Fatalf("restored Stats = %+v, want rows=16 snapshots=9 K=4 serial", rst)
	}
	if rst.Updates == 0 {
		t.Fatalf("restored Stats.Updates = 0, want a nonzero version counter")
	}
}

// TestStatsDistributedIntrospection: a distributed run reports the full
// serving introspection — configuration echo, Rows/Snapshots/Updates from
// the live session world, wire traffic — not just the traffic counters,
// and the ingest counters survive a Save/Load round trip (which resumes
// serially from the gathered state).
func TestStatsDistributedIntrospection(t *testing.T) {
	if testing.Short() && os.Getenv("CI") == "" {
		t.Skip("short mode: skipping multi-process run")
	}
	svd, err := parsvd.New(parsvd.WithModes(4), parsvd.WithForgetFactor(0.9),
		parsvd.WithBackend(parsvd.Distributed), parsvd.WithRanks(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svd.Close()

	// Before any data: configuration only, every counter zero — and no
	// worker fleet has been spawned to answer it.
	if st := svd.Stats(); st.Backend != parsvd.Distributed || st.K != 4 || st.Ranks != 2 ||
		st.Rows != 0 || st.Snapshots != 0 || st.Updates != 0 || st.Messages != 0 || st.Bytes != 0 {
		t.Fatalf("fresh distributed Stats = %+v, want configuration with zero counters", st)
	}

	if err := svd.Push(cloneTestMatrix(16, 6)); err != nil {
		t.Fatal(err)
	}
	if err := svd.Push(cloneTestMatrix(16, 3)); err != nil {
		t.Fatal(err)
	}
	st := svd.Stats()
	if st.Rows != 16 || st.Snapshots != 9 || st.Updates != 2 {
		t.Fatalf("distributed Stats after two pushes = %+v, want rows=16 snapshots=9 updates=2", st)
	}
	if st.Messages == 0 || st.Bytes == 0 {
		t.Fatalf("distributed Stats carries no wire traffic: %+v", st)
	}

	var buf bytes.Buffer
	if err := svd.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := parsvd.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rst := restored.Stats()
	if rst.Rows != 16 || rst.Snapshots != 9 || rst.K != 4 || rst.Backend != parsvd.Serial {
		t.Fatalf("restored Stats = %+v, want rows=16 snapshots=9 K=4 serial", rst)
	}
	if rst.Updates == 0 {
		t.Fatal("restored Stats.Updates = 0, want a nonzero version counter")
	}
}
